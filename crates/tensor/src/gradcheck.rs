//! Finite-difference gradient checking.
//!
//! Every nontrivial op in this crate is verified against central finite
//! differences; the model crates reuse [`check_gradients`] on whole
//! forward passes (attention blocks, GRU cells, losses), which is the
//! strongest correctness evidence a from-scratch autograd can offer.

use crate::nn::param::{HasParams, Step};
use crate::tape::Var;
use crate::tensor::Tensor;

/// Result of a gradient check: largest absolute and relative deviation
/// between analytic and numeric gradients over all input elements.
#[derive(Debug, Clone, Copy)]
pub struct GradCheckReport {
    /// Largest `|analytic - numeric|`.
    pub max_abs_err: f64,
    /// Largest `|analytic - numeric| / max(1, |analytic|, |numeric|)`.
    pub max_rel_err: f64,
}

/// Checks the gradients of a scalar-valued function of `inputs` against
/// central finite differences with step `eps`.
///
/// `f` receives a fresh [`Step`] and the leaf vars corresponding to
/// `inputs` (in order) and must return a **one-element** loss var. It must
/// be deterministic — rebuild any dropout masks outside or use
/// `training = false`.
///
/// # Panics
/// Panics if `f` returns a non-scalar var.
pub fn check_gradients(
    f: impl Fn(&mut Step, &[Var]) -> Var,
    inputs: &[Tensor],
    eps: f32,
) -> GradCheckReport {
    // Analytic gradients.
    let mut step = Step::new();
    let vars: Vec<Var> = inputs.iter().map(|t| step.tape.leaf(t.clone())).collect();
    let loss = f(&mut step, &vars);
    let grads = step.tape.backward(loss);
    let analytic: Vec<Tensor> = vars
        .iter()
        .zip(inputs)
        .map(|(&v, t)| grads.get(v).cloned().unwrap_or_else(|| Tensor::zeros(t.shape().clone())))
        .collect();

    let eval = |perturbed: &[Tensor]| -> f64 {
        let mut step = Step::new();
        let vars: Vec<Var> = perturbed.iter().map(|t| step.tape.leaf(t.clone())).collect();
        let loss = f(&mut step, &vars);
        step.tape.value(loss).item() as f64
    };

    let mut report = GradCheckReport { max_abs_err: 0.0, max_rel_err: 0.0 };
    for (i, input) in inputs.iter().enumerate() {
        for j in 0..input.len() {
            let mut plus: Vec<Tensor> = inputs.to_vec();
            plus[i].data_mut()[j] += eps;
            let mut minus: Vec<Tensor> = inputs.to_vec();
            minus[i].data_mut()[j] -= eps;
            let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps as f64);
            let analytic_v = analytic[i].at(j) as f64;
            let abs = (analytic_v - numeric).abs();
            let rel = abs / analytic_v.abs().max(numeric.abs()).max(1.0);
            report.max_abs_err = report.max_abs_err.max(abs);
            report.max_rel_err = report.max_rel_err.max(rel);
        }
    }
    report
}

/// Checks the gradients of a scalar loss with respect to **every trainable
/// parameter** of a model against central finite differences.
///
/// [`check_gradients`] perturbs explicit leaf tensors; models, however, bind
/// their [`Param`](crate::nn::Param)s to the tape internally via
/// `Param::var`, so leaves are out of the caller's reach. This variant walks
/// the parameters through [`HasParams`] instead: analytic gradients are read
/// back per parameter in visit order, numeric ones are obtained by nudging
/// one scalar at a time through `visit_mut` and re-running the forward pass.
///
/// `f` receives the model and a fresh [`Step`] and must deterministically
/// build a **one-element** loss — run with `training = false` and reseed any
/// internal RNG on every call. The model is restored to its original values
/// before returning.
///
/// # Panics
/// Panics if `f` returns a non-scalar var.
pub fn check_param_gradients<M: HasParams + ?Sized>(
    model: &mut M,
    f: impl Fn(&M, &mut Step) -> Var,
    eps: f32,
) -> GradCheckReport {
    // Analytic gradients, captured in visit order. Parameters that did not
    // influence the loss check as all-zero.
    let mut step = Step::new();
    let loss = f(model, &mut step);
    let grads = step.tape.backward(loss);
    let mut analytic: Vec<Tensor> = Vec::new();
    model.visit(&mut |p| {
        analytic.push(
            p.grad(&step, &grads)
                .cloned()
                .unwrap_or_else(|| Tensor::zeros(p.value().shape().clone())),
        );
    });
    drop(step);

    let eval = |m: &M| -> f64 {
        let mut step = Step::new();
        let loss = f(m, &mut step);
        step.tape.value(loss).item() as f64
    };
    // Reads/writes scalar `j` of the `pi`-th parameter in visit order.
    // Probes SET absolute values (orig ± e) rather than adding deltas, so
    // restoring the original bits afterwards is exact — an add/subtract
    // round-trip in f32 would leave 1-ulp residue on the model.
    let get = |m: &mut M, pi: usize, j: usize| -> f32 {
        let mut k = 0usize;
        let mut out = 0.0;
        m.visit_mut(&mut |p| {
            if k == pi {
                out = p.value().data()[j];
            }
            k += 1;
        });
        out
    };
    let set = |m: &mut M, pi: usize, j: usize, v: f32| {
        let mut k = 0usize;
        m.visit_mut(&mut |p| {
            if k == pi {
                p.value_mut().data_mut()[j] = v;
            }
            k += 1;
        });
    };

    // Central differences are unreliable within `eps` of a piecewise-linear
    // kink (ReLU, max-pool): the probe straddles two linear pieces and the
    // quotient lands between their slopes. A genuine backward bug shows the
    // same error at *every* step size, while a kink crossing vanishes once
    // the step shrinks past the distance to the kink — so elements that miss
    // at `eps` are retried on a descending ladder and scored by their best.
    let mut report = GradCheckReport { max_abs_err: 0.0, max_rel_err: 0.0 };
    for (pi, analytic_p) in analytic.iter().enumerate() {
        for j in 0..analytic_p.len() {
            let analytic_v = analytic_p.at(j) as f64;
            let orig = get(model, pi, j);
            let mut best_abs = f64::INFINITY;
            let mut best_rel = f64::INFINITY;
            for &e in &[eps, eps / 4.0, eps / 16.0] {
                set(model, pi, j, orig + e);
                let plus = eval(model);
                set(model, pi, j, orig - e);
                let minus = eval(model);
                set(model, pi, j, orig); // bit-exact restore
                let numeric = (plus - minus) / (2.0 * e as f64);
                let abs = (analytic_v - numeric).abs();
                let rel = abs / analytic_v.abs().max(numeric.abs()).max(1.0);
                if rel < best_rel {
                    best_rel = rel;
                    best_abs = abs;
                }
                if best_rel <= 1e-4 {
                    break;
                }
            }
            report.max_abs_err = report.max_abs_err.max(best_abs);
            report.max_rel_err = report.max_rel_err.max(best_rel);
        }
    }
    report
}

/// Asserts [`check_param_gradients`] passes within `tol` (relative).
///
/// # Panics
/// Panics with the report when the tolerance is exceeded.
pub fn assert_param_gradients<M: HasParams + ?Sized>(
    model: &mut M,
    f: impl Fn(&M, &mut Step) -> Var,
    eps: f32,
    tol: f64,
) {
    let report = check_param_gradients(model, f, eps);
    assert!(report.max_rel_err <= tol, "parameter gradient check failed: {report:?} (tol {tol})");
}

/// Asserts the gradient check passes within `tol` (relative).
///
/// # Panics
/// Panics with the report when the tolerance is exceeded.
pub fn assert_gradients(
    f: impl Fn(&mut Step, &[Var]) -> Var,
    inputs: &[Tensor],
    eps: f32,
    tol: f64,
) {
    let report = check_gradients(f, inputs, eps);
    assert!(report.max_rel_err <= tol, "gradient check failed: {report:?} (tol {tol})");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{rng, uniform};

    #[test]
    fn catches_a_correct_gradient() {
        // loss = Σ x², dx = 2x
        let mut r = rng(60);
        let x = uniform([5], -1.0, 1.0, &mut r);
        assert_gradients(
            |step, vars| {
                let sq = step.tape.mul(vars[0], vars[0]);
                step.tape.sum_all(sq)
            },
            &[x],
            1e-3,
            1e-3,
        );
    }

    #[test]
    fn would_catch_a_wrong_gradient() {
        // scale claims d/dx (2x) = 2, so pretending the function is 3x
        // must blow the tolerance.
        let mut r = rng(61);
        let x = uniform([4], -1.0, 1.0, &mut r);
        let report = check_gradients(
            |step, vars| {
                // forward computes 3·Σx but we route through `scale(x, 2)`
                // plus a constant-captured extra Σx that backward can't see:
                // emulate by adding a *constant* copy of x, whose gradient
                // is (wrongly, for this function) not attributed to x.
                let doubled = step.tape.scale(vars[0], 2.0);
                let c = step.tape.value(vars[0]).clone();
                let with_const = step.tape.add_const(doubled, &c);
                step.tape.sum_all(with_const)
            },
            &[x],
            1e-3,
        );
        assert!(report.max_rel_err > 0.1, "expected failure, got {report:?}");
    }

    #[test]
    fn multi_input_functions() {
        // loss = Σ (a ∘ b), da = b, db = a
        let mut r = rng(62);
        let a = uniform([3], -1.0, 1.0, &mut r);
        let b = uniform([3], -1.0, 1.0, &mut r);
        assert_gradients(
            |step, vars| {
                let p = step.tape.mul(vars[0], vars[1]);
                step.tape.sum_all(p)
            },
            &[a, b],
            1e-3,
            1e-3,
        );
    }

    #[test]
    fn param_variant_checks_model_parameters() {
        use crate::nn::Param;
        // Two-parameter "model": loss = Σ (a ∘ a) + 3 Σ b.
        struct Toy {
            a: Param,
            b: Param,
        }
        impl HasParams for Toy {
            fn visit(&self, f: &mut dyn FnMut(&Param)) {
                f(&self.a);
                f(&self.b);
            }
            fn visit_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
                f(&mut self.a);
                f(&mut self.b);
            }
        }
        let mut r = rng(63);
        let mut m = Toy {
            a: Param::new("a", uniform([3], -1.0, 1.0, &mut r)),
            b: Param::new("b", uniform([2], -1.0, 1.0, &mut r)),
        };
        let report = check_param_gradients(
            &mut m,
            |m, step| {
                let a = m.a.var(step);
                let b = m.b.var(step);
                let sq = step.tape.mul(a, a);
                let s1 = step.tape.sum_all(sq);
                let sb = step.tape.scale(b, 3.0);
                let s2 = step.tape.sum_all(sb);
                step.tape.add(s1, s2)
            },
            1e-3,
        );
        assert!(report.max_rel_err < 1e-3, "{report:?}");
        // the model is restored afterwards
        let orig = rng(63);
        let _ = orig;
    }

    #[test]
    fn param_variant_restores_values() {
        use crate::nn::Param;
        let mut p = Param::new("w", Tensor::from_vec([2], vec![1.5, -0.5]));
        let before = p.value().data().to_vec();
        let _ = check_param_gradients(
            &mut p,
            |p, step| {
                let w = p.var(step);
                let sq = step.tape.mul(w, w);
                step.tape.sum_all(sq)
            },
            1e-3,
        );
        assert_eq!(p.value().data(), &before[..]);
    }

    // The comprehensive per-op checks live in tests/gradcheck_ops.rs at the
    // crate level, where each public op gets its own case.
}
