//! Finite-difference gradient checking.
//!
//! Every nontrivial op in this crate is verified against central finite
//! differences; the model crates reuse [`check_gradients`] on whole
//! forward passes (attention blocks, GRU cells, losses), which is the
//! strongest correctness evidence a from-scratch autograd can offer.

use crate::nn::param::Step;
use crate::tape::Var;
use crate::tensor::Tensor;

/// Result of a gradient check: largest absolute and relative deviation
/// between analytic and numeric gradients over all input elements.
#[derive(Debug, Clone, Copy)]
pub struct GradCheckReport {
    /// Largest `|analytic - numeric|`.
    pub max_abs_err: f64,
    /// Largest `|analytic - numeric| / max(1, |analytic|, |numeric|)`.
    pub max_rel_err: f64,
}

/// Checks the gradients of a scalar-valued function of `inputs` against
/// central finite differences with step `eps`.
///
/// `f` receives a fresh [`Step`] and the leaf vars corresponding to
/// `inputs` (in order) and must return a **one-element** loss var. It must
/// be deterministic — rebuild any dropout masks outside or use
/// `training = false`.
///
/// # Panics
/// Panics if `f` returns a non-scalar var.
pub fn check_gradients(
    f: impl Fn(&mut Step, &[Var]) -> Var,
    inputs: &[Tensor],
    eps: f32,
) -> GradCheckReport {
    // Analytic gradients.
    let mut step = Step::new();
    let vars: Vec<Var> = inputs.iter().map(|t| step.tape.leaf(t.clone())).collect();
    let loss = f(&mut step, &vars);
    let grads = step.tape.backward(loss);
    let analytic: Vec<Tensor> = vars
        .iter()
        .zip(inputs)
        .map(|(&v, t)| {
            grads
                .get(v)
                .cloned()
                .unwrap_or_else(|| Tensor::zeros(t.shape().clone()))
        })
        .collect();

    let eval = |perturbed: &[Tensor]| -> f64 {
        let mut step = Step::new();
        let vars: Vec<Var> = perturbed.iter().map(|t| step.tape.leaf(t.clone())).collect();
        let loss = f(&mut step, &vars);
        step.tape.value(loss).item() as f64
    };

    let mut report = GradCheckReport { max_abs_err: 0.0, max_rel_err: 0.0 };
    for (i, input) in inputs.iter().enumerate() {
        for j in 0..input.len() {
            let mut plus: Vec<Tensor> = inputs.to_vec();
            plus[i].data_mut()[j] += eps;
            let mut minus: Vec<Tensor> = inputs.to_vec();
            minus[i].data_mut()[j] -= eps;
            let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps as f64);
            let analytic_v = analytic[i].at(j) as f64;
            let abs = (analytic_v - numeric).abs();
            let rel = abs / analytic_v.abs().max(numeric.abs()).max(1.0);
            report.max_abs_err = report.max_abs_err.max(abs);
            report.max_rel_err = report.max_rel_err.max(rel);
        }
    }
    report
}

/// Asserts the gradient check passes within `tol` (relative).
///
/// # Panics
/// Panics with the report when the tolerance is exceeded.
pub fn assert_gradients(
    f: impl Fn(&mut Step, &[Var]) -> Var,
    inputs: &[Tensor],
    eps: f32,
    tol: f64,
) {
    let report = check_gradients(f, inputs, eps);
    assert!(
        report.max_rel_err <= tol,
        "gradient check failed: {report:?} (tol {tol})"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::{rng, uniform};

    #[test]
    fn catches_a_correct_gradient() {
        // loss = Σ x², dx = 2x
        let mut r = rng(60);
        let x = uniform([5], -1.0, 1.0, &mut r);
        assert_gradients(
            |step, vars| {
                let sq = step.tape.mul(vars[0], vars[0]);
                step.tape.sum_all(sq)
            },
            &[x],
            1e-3,
            1e-3,
        );
    }

    #[test]
    fn would_catch_a_wrong_gradient() {
        // scale claims d/dx (2x) = 2, so pretending the function is 3x
        // must blow the tolerance.
        let mut r = rng(61);
        let x = uniform([4], -1.0, 1.0, &mut r);
        let report = check_gradients(
            |step, vars| {
                // forward computes 3·Σx but we route through `scale(x, 2)`
                // plus a constant-captured extra Σx that backward can't see:
                // emulate by adding a *constant* copy of x, whose gradient
                // is (wrongly, for this function) not attributed to x.
                let doubled = step.tape.scale(vars[0], 2.0);
                let c = step.tape.value(vars[0]).clone();
                let with_const = step.tape.add_const(doubled, &c);
                step.tape.sum_all(with_const)
            },
            &[x],
            1e-3,
        );
        assert!(report.max_rel_err > 0.1, "expected failure, got {report:?}");
    }

    #[test]
    fn multi_input_functions() {
        // loss = Σ (a ∘ b), da = b, db = a
        let mut r = rng(62);
        let a = uniform([3], -1.0, 1.0, &mut r);
        let b = uniform([3], -1.0, 1.0, &mut r);
        assert_gradients(
            |step, vars| {
                let p = step.tape.mul(vars[0], vars[1]);
                step.tape.sum_all(p)
            },
            &[a, b],
            1e-3,
            1e-3,
        );
    }

    // The comprehensive per-op checks live in tests/gradcheck_ops.rs at the
    // crate level, where each public op gets its own case.
}
