//! Property-based tests on the tensor core: algebraic identities that must
//! hold for arbitrary shapes and values.

use proptest::prelude::*;
use seqrec_tensor::linalg;
use seqrec_tensor::Tensor;

/// Strategy: a tensor with the given number of elements, values in ±8
/// (bounded so f32 accumulation error stays well under the tolerances).
fn tensor_with(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-8.0f32..8.0, len)
}

fn close(a: &Tensor, b: &Tensor, tol: f32) -> Result<(), TestCaseError> {
    prop_assert!(a.shape() == b.shape());
    let scale = a.max_abs().max(b.max_abs()).max(1.0);
    prop_assert!(a.max_diff(b) <= tol * scale, "diff {} (scale {scale})", a.max_diff(b));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_matches_naive(
        m in 1usize..9, k in 1usize..9, n in 1usize..9,
        seed in 0u64..1000,
    ) {
        let mut r = seqrec_tensor::init::rng(seed);
        let a = seqrec_tensor::init::uniform([m, k], -2.0, 2.0, &mut r);
        let b = seqrec_tensor::init::uniform([k, n], -2.0, 2.0, &mut r);
        close(&linalg::matmul_nn(&a, &b), &linalg::matmul_naive(&a, &b), 1e-5)?;
    }

    #[test]
    fn matmul_transpose_identities(
        m in 1usize..7, k in 1usize..7, n in 1usize..7,
        seed in 0u64..1000,
    ) {
        let mut r = seqrec_tensor::init::rng(seed);
        let a = seqrec_tensor::init::uniform([m, k], -2.0, 2.0, &mut r);
        let b = seqrec_tensor::init::uniform([n, k], -2.0, 2.0, &mut r);
        // A·Bᵀ == (B·Aᵀ)ᵀ
        let lhs = linalg::matmul_nt(&a, &b);
        let rhs = linalg::matmul_nt(&b, &a).transpose2();
        close(&lhs, &rhs, 1e-5)?;
    }

    #[test]
    fn matmul_distributes_over_addition(
        m in 1usize..6, k in 1usize..6, n in 1usize..6,
        seed in 0u64..1000,
    ) {
        let mut r = seqrec_tensor::init::rng(seed);
        let a = seqrec_tensor::init::uniform([m, k], -2.0, 2.0, &mut r);
        let b = seqrec_tensor::init::uniform([k, n], -2.0, 2.0, &mut r);
        let c = seqrec_tensor::init::uniform([k, n], -2.0, 2.0, &mut r);
        let lhs = linalg::matmul_nn(&a, &b.add(&c));
        let rhs = linalg::matmul_nn(&a, &b).add(&linalg::matmul_nn(&a, &c));
        close(&lhs, &rhs, 1e-4)?;
    }

    #[test]
    fn add_commutes_and_sub_inverts(data_a in tensor_with(24), data_b in tensor_with(24)) {
        let a = Tensor::from_vec([4, 6], data_a);
        let b = Tensor::from_vec([4, 6], data_b);
        close(&a.add(&b), &b.add(&a), 1e-6)?;
        close(&a.add(&b).sub(&b), &a, 1e-5)?;
    }

    #[test]
    fn scale_is_linear(data in tensor_with(12), s in -4.0f32..4.0) {
        let a = Tensor::from_vec([12], data);
        close(&a.scale(s).scale(2.0), &a.scale(2.0 * s), 1e-4)?;
    }

    #[test]
    fn transpose_is_involutive(m in 1usize..10, n in 1usize..10, seed in 0u64..1000) {
        let mut r = seqrec_tensor::init::rng(seed);
        let a = seqrec_tensor::init::uniform([m, n], -2.0, 2.0, &mut r);
        close(&a.transpose2().transpose2(), &a, 0.0)?;
    }

    #[test]
    fn reshape_preserves_sum(data in tensor_with(24)) {
        let a = Tensor::from_vec([2, 3, 4], data);
        let b = a.reshape([6, 4]);
        prop_assert!((a.sum() - b.sum()).abs() < 1e-5);
    }

    #[test]
    fn norm_triangle_inequality(data_a in tensor_with(16), data_b in tensor_with(16)) {
        let a = Tensor::from_vec([16], data_a);
        let b = Tensor::from_vec([16], data_b);
        prop_assert!(a.add(&b).norm() <= a.norm() + b.norm() + 1e-4);
    }

    #[test]
    fn softmax_rows_form_a_distribution(rows in 1usize..5, cols in 1usize..8, seed in 0u64..1000) {
        let mut r = seqrec_tensor::init::rng(seed);
        let x = seqrec_tensor::init::uniform([rows, cols], -10.0, 10.0, &mut r);
        let mut step = seqrec_tensor::nn::Step::new();
        let v = step.tape.leaf(x);
        let y = step.tape.softmax(v);
        let out = step.tape.value(y);
        for row in out.data().chunks(cols) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn cross_entropy_is_nonnegative_and_finite(
        rows in 1usize..5, cols in 2usize..6, seed in 0u64..1000,
    ) {
        let mut r = seqrec_tensor::init::rng(seed);
        let x = seqrec_tensor::init::uniform([rows, cols], -20.0, 20.0, &mut r);
        let targets: Vec<u32> = (0..rows).map(|i| (i % cols) as u32).collect();
        let mut step = seqrec_tensor::nn::Step::new();
        let v = step.tape.leaf(x);
        let l = step.tape.softmax_cross_entropy(v, &targets);
        let out = step.tape.value(l);
        prop_assert!(out.is_finite());
        prop_assert!(out.data().iter().all(|&v| v >= 0.0));
    }
}
