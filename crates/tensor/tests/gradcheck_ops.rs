//! Finite-difference verification of every differentiable op.
//!
//! These are the strongest correctness tests in the workspace: if an op's
//! hand-written backward pass is wrong, training silently converges to the
//! wrong place — a finite-difference check catches it immediately.

use seqrec_tensor::gradcheck::assert_gradients;
use seqrec_tensor::init::{rng, uniform};
use seqrec_tensor::ops::causal_padding_mask;
use seqrec_tensor::Tensor;

const EPS: f32 = 1e-2;
const TOL: f64 = 2e-3;

fn t(seed: u64, shape: impl Into<seqrec_tensor::Shape>) -> Tensor {
    uniform(shape, -1.0, 1.0, &mut rng(seed))
}

#[test]
fn grad_add_sub_mul_scale() {
    assert_gradients(
        |s, v| {
            let a = s.tape.add(v[0], v[1]);
            let b = s.tape.sub(a, v[0]);
            let c = s.tape.mul(b, v[1]);
            let d = s.tape.scale(c, 1.7);
            s.tape.sum_all(d)
        },
        &[t(1, [2, 3]), t(2, [2, 3])],
        EPS,
        TOL,
    );
}

#[test]
fn grad_bias_ops() {
    assert_gradients(
        |s, v| {
            let a = s.tape.add_bias(v[0], v[1]);
            let b = s.tape.mul_bias(a, v[2]);
            s.tape.sum_all(b)
        },
        &[t(3, [4, 3]), t(4, [3]), t(5, [3])],
        EPS,
        TOL,
    );
}

#[test]
fn grad_broadcast_batch() {
    assert_gradients(
        |s, v| {
            let a = s.tape.add_broadcast_batch(v[0], v[1]);
            let sq = s.tape.mul(a, a);
            s.tape.sum_all(sq)
        },
        &[t(6, [2, 3, 2]), t(7, [3, 2])],
        EPS,
        TOL,
    );
}

#[test]
fn grad_sum_rows_and_masked_mean() {
    let w = Tensor::from_vec([4], vec![1.0, 0.0, 1.0, 1.0]);
    assert_gradients(
        move |s, v| {
            let sq = s.tape.mul(v[0], v[0]);
            let rows = s.tape.sum_rows(sq);
            s.tape.masked_mean(rows, &w)
        },
        &[t(8, [4, 3])],
        EPS,
        TOL,
    );
}

#[test]
fn grad_activations() {
    for (seed, f) in [
        (10u64, 0usize), // relu
        (11, 1),         // sigmoid
        (12, 2),         // tanh
        (13, 3),         // softplus
    ] {
        assert_gradients(
            move |s, v| {
                let y = match f {
                    0 => s.tape.relu(v[0]),
                    1 => s.tape.sigmoid(v[0]),
                    2 => s.tape.tanh(v[0]),
                    _ => s.tape.softplus(v[0]),
                };
                // square to make the loss non-linear in y
                let sq = s.tape.mul(y, y);
                s.tape.sum_all(sq)
            },
            // keep away from relu's kink at 0 by seeding different ranges
            &[t(seed, [3, 3]).map(|x| x + 0.05 * x.signum())],
            EPS,
            TOL,
        );
    }
}

#[test]
fn grad_matmul_family() {
    assert_gradients(
        |s, v| {
            let c = s.tape.matmul(v[0], v[1]);
            let sq = s.tape.mul(c, c);
            s.tape.sum_all(sq)
        },
        &[t(20, [3, 4]), t(21, [4, 2])],
        EPS,
        TOL,
    );
    assert_gradients(
        |s, v| {
            let c = s.tape.matmul_nt(v[0], v[1]);
            let sq = s.tape.mul(c, c);
            s.tape.sum_all(sq)
        },
        &[t(22, [3, 4]), t(23, [5, 4])],
        EPS,
        TOL,
    );
}

#[test]
fn grad_bmm_family() {
    assert_gradients(
        |s, v| {
            let c = s.tape.bmm(v[0], v[1]);
            let sq = s.tape.mul(c, c);
            s.tape.sum_all(sq)
        },
        &[t(24, [2, 3, 4]), t(25, [2, 4, 2])],
        EPS,
        TOL,
    );
    assert_gradients(
        |s, v| {
            let c = s.tape.bmm_nt(v[0], v[1]);
            let sq = s.tape.mul(c, c);
            s.tape.sum_all(sq)
        },
        &[t(26, [2, 3, 4]), t(27, [2, 5, 4])],
        EPS,
        TOL,
    );
}

#[test]
fn grad_softmax() {
    assert_gradients(
        |s, v| {
            let y = s.tape.softmax(v[0]);
            let sq = s.tape.mul(y, y);
            s.tape.sum_all(sq)
        },
        &[t(30, [3, 5])],
        EPS,
        TOL,
    );
}

#[test]
fn grad_layernorm() {
    assert_gradients(
        |s, v| {
            let y = s.tape.layernorm(v[0], 1e-5);
            let sq = s.tape.mul(y, y);
            let c = s.tape.scale(sq, 0.5);
            let cube = s.tape.mul(c, y);
            s.tape.sum_all(cube)
        },
        &[t(31, [3, 6]).scale(2.0)],
        EPS,
        5e-3, // layernorm FD is noisier: the normalisation amplifies eps
    );
}

#[test]
fn grad_normalize_rows() {
    assert_gradients(
        |s, v| {
            let y = s.tape.normalize_rows(v[0], 1e-12);
            let sq = s.tape.mul(y, y);
            let asym = s.tape.mul(sq, y);
            s.tape.sum_all(asym)
        },
        // rows bounded away from 0 so the norm is smooth
        &[t(32, [3, 4]).map(|x| x + 0.6 * x.signum())],
        EPS,
        5e-3,
    );
}

#[test]
fn grad_embedding_gather() {
    assert_gradients(
        |s, v| {
            let e = s.tape.embedding(v[0], &[2, 0, 2, 1], &[4]);
            let sq = s.tape.mul(e, e);
            s.tape.sum_all(sq)
        },
        &[t(33, [3, 4])],
        EPS,
        TOL,
    );
}

#[test]
fn grad_head_split_merge_and_select() {
    assert_gradients(
        |s, v| {
            let sp = s.tape.split_heads(v[0], 2);
            let back = s.tape.merge_heads(sp, 2);
            let last = s.tape.last_time(back);
            let sq = s.tape.mul(last, last);
            s.tape.sum_all(sq)
        },
        &[t(34, [2, 3, 4])],
        EPS,
        TOL,
    );
}

#[test]
fn grad_concat0() {
    assert_gradients(
        |s, v| {
            let c = s.tape.concat0(v[0], v[1]);
            let sq = s.tape.mul(c, c);
            s.tape.sum_all(sq)
        },
        &[t(35, [2, 3]), t(36, [4, 3])],
        EPS,
        TOL,
    );
}

#[test]
fn grad_concat_last() {
    assert_gradients(
        |s, v| {
            let c = s.tape.concat_last(v[0], v[1]);
            let sq = s.tape.mul(c, c);
            s.tape.sum_all(sq)
        },
        &[t(70, [3, 2]), t(71, [3, 4])],
        EPS,
        TOL,
    );
}

#[test]
fn grad_scale_rows_const() {
    assert_gradients(
        |s, v| {
            let y = s.tape.scale_rows_const(v[0], &[1.0, 0.0, 0.5]);
            let sq = s.tape.mul(y, y);
            s.tape.sum_all(sq)
        },
        &[t(37, [3, 4])],
        EPS,
        TOL,
    );
}

#[test]
fn grad_softmax_cross_entropy() {
    assert_gradients(
        |s, v| {
            let l = s.tape.softmax_cross_entropy(v[0], &[1, 0, 2]);
            s.tape.mean_all(l)
        },
        &[t(38, [3, 4])],
        EPS,
        TOL,
    );
}

#[test]
fn grad_bce_and_bpr() {
    assert_gradients(
        |s, v| {
            let l = s.tape.bce_pairwise(v[0], v[1]);
            s.tape.mean_all(l)
        },
        &[t(39, [5]), t(40, [5])],
        EPS,
        TOL,
    );
    assert_gradients(
        |s, v| {
            let l = s.tape.bpr(v[0], v[1]);
            s.tape.mean_all(l)
        },
        &[t(41, [5]), t(42, [5])],
        EPS,
        TOL,
    );
}

#[test]
fn grad_attention_block_end_to_end() {
    // A miniature single-head attention: softmax(mask(Q·Kᵀ/√d))·V,
    // checking that gradients survive the full composition.
    let mask = causal_padding_mask(&[vec![true, true, true]], 3);
    assert_gradients(
        move |s, v| {
            let scores = s.tape.bmm_nt(v[0], v[1]);
            let scaled = s.tape.scale(scores, 1.0 / (2.0f32).sqrt());
            let masked = s.tape.add_attn_mask(scaled, &mask, 1);
            let probs = s.tape.softmax(masked);
            let out = s.tape.bmm(probs, v[2]);
            let sq = s.tape.mul(out, out);
            s.tape.sum_all(sq)
        },
        &[t(50, [1, 3, 2]), t(51, [1, 3, 2]), t(52, [1, 3, 2])],
        EPS,
        5e-3,
    );
}

#[test]
fn grad_window_ops() {
    assert_gradients(
        |s, v| {
            let u = s.tape.unfold_windows(v[0], 2);
            let sq = s.tape.mul(u, u);
            s.tape.sum_all(sq)
        },
        &[t(80, [2, 4, 3])],
        EPS,
        TOL,
    );
    assert_gradients(
        |s, v| {
            let tr = s.tape.transpose12(v[0]);
            let sq = s.tape.mul(tr, tr);
            let cube = s.tape.mul(sq, tr);
            s.tape.sum_all(cube)
        },
        &[t(81, [2, 3, 4])],
        EPS,
        TOL,
    );
    // max is piecewise linear: keep entries well separated so the FD step
    // never crosses an argmax boundary.
    let x = Tensor::from_vec([1, 3, 2], vec![0.0, 5.0, 1.0, -2.0, 3.0, 0.5]);
    assert_gradients(
        |s, v| {
            let m = s.tape.max_over_dim1(v[0]);
            let sq = s.tape.mul(m, m);
            s.tape.sum_all(sq)
        },
        &[x],
        1e-3,
        TOL,
    );
}

#[test]
fn grad_gather_positions() {
    assert_gradients(
        |s, v| {
            let g = s.tape.gather_positions(v[0], &[(0, 1), (1, 0), (0, 1)]);
            let sq = s.tape.mul(g, g);
            s.tape.sum_all(sq)
        },
        &[t(82, [2, 3, 2])],
        EPS,
        TOL,
    );
}

#[test]
fn grad_dropout_eval_mode_is_transparent() {
    assert_gradients(
        |s, v| {
            let mut r = rng(60);
            let y = s.tape.dropout(v[0], 0.5, false, &mut r);
            let sq = s.tape.mul(y, y);
            s.tape.sum_all(sq)
        },
        &[t(53, [3, 3])],
        EPS,
        TOL,
    );
}
