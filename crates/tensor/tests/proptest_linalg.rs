//! Property-based tests pinning the blocked GEMM engine to the naive
//! reference on arbitrary — deliberately non-tile-multiple — shapes.
//!
//! The engine's correctness risk is concentrated at blocking boundaries:
//! partial `MR×NR` register tiles, partial `MC`/`KC`/`NC` cache blocks, and
//! the store-then-accumulate transition between k-blocks. The shape
//! strategies below are biased to straddle exactly those edges, and the
//! `*_blocked` entry points force the packed path even for products the
//! size heuristic would route to the direct small kernels.

use proptest::prelude::*;
use seqrec_tensor::init::{rng, uniform};
use seqrec_tensor::linalg;
use seqrec_tensor::Tensor;

/// Absolute-per-element tolerance required by the acceptance criteria.
/// The blocked kernel sums in a different association order than the naive
/// loop, so results differ by rounding only.
const TOL: f32 = 1e-4;

fn close(a: &Tensor, b: &Tensor) -> Result<(), TestCaseError> {
    prop_assert!(a.shape() == b.shape(), "shape {} vs {}", a.shape(), b.shape());
    let d = a.max_diff(b);
    prop_assert!(d <= TOL, "max elementwise diff {d} > {TOL}");
    Ok(())
}

/// Shapes that straddle the register tile (MR=6, NR=16) and, for the inner
/// dimension, the KC=256 depth block. Kept small enough that 64 cases of
/// three layouts finish quickly even in debug builds.
fn edge_dim() -> impl Strategy<Value = usize> {
    1usize..40
}

/// Occasionally pushes k past one KC block so accumulate-mode microkernel
/// calls (pc > 0) get exercised; values beyond 256 use the second k-block.
fn depth_dim() -> impl Strategy<Value = usize> {
    1usize..300
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Blocked `A·B` equals the naive triple loop on arbitrary shapes.
    #[test]
    fn blocked_nn_matches_naive(
        m in edge_dim(), k in depth_dim(), n in edge_dim(),
        seed in 0u64..1000,
    ) {
        let mut r = rng(seed);
        let a = uniform([m, k], -1.0, 1.0, &mut r);
        let b = uniform([k, n], -1.0, 1.0, &mut r);
        close(&linalg::matmul_nn_blocked(&a, &b), &linalg::matmul_naive(&a, &b))?;
    }

    /// Blocked `A·Bᵀ` equals naive on the explicitly transposed operand.
    #[test]
    fn blocked_nt_matches_naive(
        m in edge_dim(), k in depth_dim(), n in edge_dim(),
        seed in 0u64..1000,
    ) {
        let mut r = rng(seed);
        let a = uniform([m, k], -1.0, 1.0, &mut r);
        let b = uniform([n, k], -1.0, 1.0, &mut r);
        close(
            &linalg::matmul_nt_blocked(&a, &b),
            &linalg::matmul_naive(&a, &b.transpose2()),
        )?;
    }

    /// Blocked `Aᵀ·B` equals naive on the explicitly transposed operand.
    #[test]
    fn blocked_tn_matches_naive(
        m in edge_dim(), k in depth_dim(), n in edge_dim(),
        seed in 0u64..1000,
    ) {
        let mut r = rng(seed);
        let a = uniform([k, m], -1.0, 1.0, &mut r);
        let b = uniform([k, n], -1.0, 1.0, &mut r);
        close(
            &linalg::matmul_tn_blocked(&a, &b),
            &linalg::matmul_naive(&a.transpose2(), &b),
        )?;
    }

    /// The public dispatching entry points (small path or blocked, chosen by
    /// the size heuristic) agree with naive regardless of which path runs.
    #[test]
    fn dispatched_matmuls_match_naive(
        m in edge_dim(), k in 1usize..64, n in edge_dim(),
        seed in 0u64..1000,
    ) {
        let mut r = rng(seed);
        let a = uniform([m, k], -1.0, 1.0, &mut r);
        let b = uniform([k, n], -1.0, 1.0, &mut r);
        let bt = uniform([n, k], -1.0, 1.0, &mut r);
        let at = uniform([k, m], -1.0, 1.0, &mut r);
        close(&linalg::matmul_nn(&a, &b), &linalg::matmul_naive(&a, &b))?;
        close(&linalg::matmul_nt(&a, &bt), &linalg::matmul_naive(&a, &bt.transpose2()))?;
        close(&linalg::matmul_tn(&at, &b), &linalg::matmul_naive(&at.transpose2(), &b))?;
    }

    /// Every batch of a `bmm_nn` equals an independent 2D matmul; batch
    /// count of 1 specifically exercises the single-batch 2D routing.
    #[test]
    fn bmm_nn_batches_are_independent_matmuls(
        ba in 1usize..5, m in 1usize..20, k in 1usize..20, n in 1usize..20,
        seed in 0u64..1000,
    ) {
        let mut r = rng(seed);
        let a = uniform([ba, m, k], -1.0, 1.0, &mut r);
        let b = uniform([ba, k, n], -1.0, 1.0, &mut r);
        let c = bmm_slices(&linalg::bmm_nn(&a, &b), ba, m, n);
        for (i, ci) in c.iter().enumerate() {
            let ai = Tensor::from_vec([m, k], a.data()[i * m * k..(i + 1) * m * k].to_vec());
            let bi = Tensor::from_vec([k, n], b.data()[i * k * n..(i + 1) * k * n].to_vec());
            close(ci, &linalg::matmul_naive(&ai, &bi))?;
        }
    }

    /// `bmm_nt` and `bmm_tn` agree with per-batch naive on transposed views.
    #[test]
    fn bmm_transposed_variants_match_naive(
        ba in 1usize..4, m in 1usize..16, k in 1usize..16, n in 1usize..16,
        seed in 0u64..1000,
    ) {
        let mut r = rng(seed);
        let a = uniform([ba, m, k], -1.0, 1.0, &mut r);
        let bt = uniform([ba, n, k], -1.0, 1.0, &mut r);
        let c = bmm_slices(&linalg::bmm_nt(&a, &bt), ba, m, n);
        for (i, ci) in c.iter().enumerate() {
            let ai = Tensor::from_vec([m, k], a.data()[i * m * k..(i + 1) * m * k].to_vec());
            let bi = Tensor::from_vec([n, k], bt.data()[i * n * k..(i + 1) * n * k].to_vec());
            close(ci, &linalg::matmul_naive(&ai, &bi.transpose2()))?;
        }

        let at = uniform([ba, k, m], -1.0, 1.0, &mut r);
        let b = uniform([ba, k, n], -1.0, 1.0, &mut r);
        let c = bmm_slices(&linalg::bmm_tn(&at, &b), ba, m, n);
        for (i, ci) in c.iter().enumerate() {
            let ai = Tensor::from_vec([k, m], at.data()[i * k * m..(i + 1) * k * m].to_vec());
            let bi = Tensor::from_vec([k, n], b.data()[i * k * n..(i + 1) * k * n].to_vec());
            close(ci, &linalg::matmul_naive(&ai.transpose2(), &bi))?;
        }
    }
}

/// Splits a `[ba, m, n]` bmm result into per-batch `[m, n]` tensors.
fn bmm_slices(c: &Tensor, ba: usize, m: usize, n: usize) -> Vec<Tensor> {
    assert_eq!(c.shape().dims(), &[ba, m, n]);
    (0..ba)
        .map(|i| Tensor::from_vec([m, n], c.data()[i * m * n..(i + 1) * m * n].to_vec()))
        .collect()
}

/// Non-property regression pins at exact blocking boundaries (these shapes
/// are too slow to leave to the random strategy in debug builds).
#[test]
fn blocked_boundary_shapes_match_naive() {
    // (m, k, n) straddling MC=120, KC=256, NC is out of reach cheaply but
    // NR/MR edges combine with multi-KC accumulation here.
    for (m, k, n) in [(121, 257, 17), (120, 256, 16), (6, 512, 16), (7, 300, 33)] {
        let mut r = rng(99);
        let a = uniform([m, k], -1.0, 1.0, &mut r);
        let b = uniform([k, n], -1.0, 1.0, &mut r);
        let got = linalg::matmul_nn_blocked(&a, &b);
        let want = linalg::matmul_naive(&a, &b);
        let d = got.max_diff(&want);
        assert!(d <= TOL, "[{m},{k},{n}] diff {d}");
    }
}
