//! Row-batch invariance of the GEMM engine: the serving stack's cached
//! user-state design assembles micro-batches whose row counts differ from
//! the evaluator's batches, and the serve-vs-eval parity contract
//! (`seqrec-serve`, TESTING.md "Serving") promises **bit-exact** scores
//! either way. That only holds if each output row of `matmul_*` depends
//! solely on its own A row and on B — never on how many other rows share
//! the call. The packed engine guarantees it by construction (accumulation
//! order is fixed by the KC blocking, M-edges are zero-padded, row bands
//! are disjoint); these tests pin the property so a future retune cannot
//! silently break serving parity.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use seqrec_tensor::{linalg, Tensor};

fn random_tensor(rng: &mut ChaCha8Rng, shape: [usize; 2]) -> Tensor {
    let data = (0..shape[0] * shape[1]).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    Tensor::from_vec(shape, data)
}

/// Every row of `A·Bᵀ` computed in a full batch must be bit-identical to
/// the same row computed alone, in a pair, or in any contiguous sub-batch.
#[test]
fn matmul_nt_rows_do_not_depend_on_batch_size() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x5e7e);
    // n deliberately spans the NR=16 edge; k spans the microkernel depth.
    for (m, k, n) in [(7, 64, 33), (13, 48, 101), (3, 128, 17)] {
        let a = random_tensor(&mut rng, [m, k]);
        let b = random_tensor(&mut rng, [n, k]);
        let full = linalg::matmul_nt(&a, &b);
        for lo in 0..m {
            for hi in lo + 1..=m {
                let rows = hi - lo;
                let sub = Tensor::from_vec([rows, k], a.data()[lo * k..hi * k].to_vec());
                let part = linalg::matmul_nt(&sub, &b);
                assert_eq!(
                    part.data(),
                    &full.data()[lo * n..hi * n],
                    "rows {lo}..{hi} of a [{m},{k}]x[{n},{k}]ᵀ product changed \
                     when computed as a {rows}-row batch"
                );
            }
        }
    }
}

/// The same property for the `nn` layout (used by forward linears).
#[test]
fn matmul_nn_rows_do_not_depend_on_batch_size() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xba7c);
    let (m, k, n) = (11, 96, 40);
    let a = random_tensor(&mut rng, [m, k]);
    let b = random_tensor(&mut rng, [k, n]);
    let full = linalg::matmul_nn(&a, &b);
    for lo in 0..m {
        let sub = Tensor::from_vec([1, k], a.data()[lo * k..(lo + 1) * k].to_vec());
        let row = linalg::matmul_nn(&sub, &b);
        assert_eq!(
            row.data(),
            &full.data()[lo * n..(lo + 1) * n],
            "row {lo} of a [{m},{k}]x[{k},{n}] product changed when computed alone"
        );
    }
}
