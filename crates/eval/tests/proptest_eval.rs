//! Property-based tests on ranking metrics.

use proptest::prelude::*;
use seqrec_eval::{rank_of_target, MetricsAccumulator};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The computed rank equals the position of the target in a
    /// descending sort (ties counted against the target) of non-excluded
    /// candidates — the sort-based oracle.
    #[test]
    fn rank_matches_sort_oracle(
        scores in proptest::collection::vec(-10.0f32..10.0, 2..60),
        target_ix in 1usize..59,
        exclude in proptest::collection::vec(1u32..60, 0..10),
    ) {
        prop_assume!(target_ix < scores.len());
        let target = target_ix as u32;
        let rank = rank_of_target(&scores, target, &exclude);

        // oracle: sort candidate scores descending, count how many are >=
        // the target's score (excluding the target itself and exclusions)
        let mut excluded = vec![false; scores.len()];
        for &e in &exclude {
            if (e as usize) < scores.len() {
                excluded[e as usize] = true;
            }
        }
        excluded[target_ix] = false;
        let tscore = scores[target_ix];
        let better = scores
            .iter()
            .enumerate()
            .skip(1)
            .filter(|&(i, &s)| i != target_ix && !excluded[i] && s >= tscore)
            .count();
        prop_assert_eq!(rank, better);
    }

    /// Excluding more items can only improve (lower) the rank.
    #[test]
    fn exclusion_is_monotone(
        scores in proptest::collection::vec(-10.0f32..10.0, 3..40),
        target_ix in 1usize..39,
        extra in 1u32..40,
    ) {
        prop_assume!(target_ix < scores.len());
        prop_assume!((extra as usize) < scores.len());
        let target = target_ix as u32;
        let base = rank_of_target(&scores, target, &[]);
        let with = rank_of_target(&scores, target, &[extra]);
        prop_assert!(with <= base);
    }

    /// HR and NDCG are monotone in k, bounded in [0, 1], and NDCG ≤ HR.
    #[test]
    fn metric_bounds_and_monotonicity(
        ranks in proptest::collection::vec(0usize..100, 1..50),
    ) {
        let mut acc = MetricsAccumulator::new(&[1, 5, 10, 20]);
        for &r in &ranks {
            acc.push(r);
        }
        let m = acc.finish();
        let mut prev_hr = 0.0f64;
        let mut prev_ndcg = 0.0f64;
        for &k in &[1usize, 5, 10, 20] {
            let hr = m.hr_at(k);
            let ndcg = m.ndcg_at(k);
            prop_assert!((0.0..=1.0).contains(&hr));
            prop_assert!((0.0..=1.0).contains(&ndcg));
            prop_assert!(hr >= prev_hr, "HR not monotone in k");
            prop_assert!(ndcg >= prev_ndcg, "NDCG not monotone in k");
            prop_assert!(ndcg <= hr + 1e-12, "NDCG@{k} {ndcg} exceeds HR {hr}");
            prev_hr = hr;
            prev_ndcg = ndcg;
        }
        prop_assert!((0.0..=1.0).contains(&m.mrr));
    }

    /// Full-pipeline brute-force cross-check: metrics computed through
    /// `rank_of_target` + `MetricsAccumulator` must equal HR@k / NDCG@k / MRR
    /// re-derived from first principles — build each user's ranked
    /// recommendation list by sorting the catalog by score (ties placed
    /// above the target, matching the pessimistic convention) and read the
    /// definitions straight off the list.
    #[test]
    fn accumulator_matches_brute_force_definitions(
        users in proptest::collection::vec(
            (proptest::collection::vec(-5.0f32..5.0, 6..25), 1u32..5),
            1..20,
        ),
    ) {
        let ks = [1usize, 5, 10];
        let mut acc = MetricsAccumulator::new(&ks);
        let mut bf_hits = [0usize; 3];
        let mut bf_ndcg = [0.0f64; 3];
        let mut bf_mrr = 0.0f64;

        for (scores, target_raw) in &users {
            let target = 1 + (*target_raw as usize - 1) % (scores.len() - 1);

            // the production path
            acc.push(rank_of_target(scores, target as u32, &[]));

            // brute force: sort catalog ids 1.. by score descending, the
            // target losing every tie, then read its list position.
            let mut order: Vec<usize> = (1..scores.len()).collect();
            order.sort_by(|&a, &b| {
                scores[b]
                    .partial_cmp(&scores[a])
                    .unwrap()
                    .then_with(|| (a == target).cmp(&(b == target)))
            });
            let pos = order.iter().position(|&i| i == target).unwrap();
            bf_mrr += 1.0 / (pos + 1) as f64;
            for (i, &k) in ks.iter().enumerate() {
                if order.iter().take(k).any(|&i| i == target) {
                    bf_hits[i] += 1;
                    bf_ndcg[i] += 1.0 / ((pos + 2) as f64).log2();
                }
            }
        }

        let m = acc.finish();
        let n = users.len() as f64;
        for (i, &k) in ks.iter().enumerate() {
            let hr = bf_hits[i] as f64 / n;
            let ndcg = bf_ndcg[i] / n;
            prop_assert!((m.hr_at(k) - hr).abs() < 1e-12,
                         "HR@{k}: {} vs brute force {hr}", m.hr_at(k));
            prop_assert!((m.ndcg_at(k) - ndcg).abs() < 1e-12,
                         "NDCG@{k}: {} vs brute force {ndcg}", m.ndcg_at(k));
        }
        prop_assert!((m.mrr - bf_mrr / n).abs() < 1e-12);
    }

    /// Merging the accumulators of an *arbitrary* sharding of the user
    /// population — any number of shards, any assignment, including empty
    /// shards — equals pushing every rank sequentially.
    #[test]
    fn merge_of_arbitrary_shards_equals_sequential_push(
        ranks in proptest::collection::vec(0usize..200, 1..60),
        num_shards in 1usize..6,
        assign_seed in proptest::collection::vec(0usize..6, 60),
    ) {
        let mut whole = MetricsAccumulator::paper();
        let mut shards: Vec<MetricsAccumulator> =
            (0..num_shards).map(|_| MetricsAccumulator::paper()).collect();
        for (i, &r) in ranks.iter().enumerate() {
            whole.push(r);
            shards[assign_seed[i] % num_shards].push(r);
        }
        let mut merged = shards.remove(0);
        for s in &shards {
            merged.merge(s);
        }
        let (mm, mw) = (merged.finish(), whole.finish());
        prop_assert_eq!(mm.users, mw.users);
        prop_assert_eq!(&mm.hr, &mw.hr, "HR differs");
        for (a, b) in mm.ndcg.iter().zip(&mw.ndcg) {
            prop_assert!((a - b).abs() < 1e-9, "NDCG differs: {a} vs {b}");
        }
        prop_assert!((mm.mrr - mw.mrr).abs() < 1e-9, "MRR differs");
    }

    /// MRR is bounded below by NDCG-at-infinity intuition: rank 0 users
    /// contribute 1.0 to all three; a rank beyond every k contributes only
    /// to MRR.
    #[test]
    fn perfect_ranks_maximise_everything(n in 1usize..30) {
        let mut acc = MetricsAccumulator::new(&[5]);
        for _ in 0..n {
            acc.push(0);
        }
        let m = acc.finish();
        prop_assert_eq!(m.hr_at(5), 1.0);
        prop_assert_eq!(m.ndcg_at(5), 1.0);
        prop_assert_eq!(m.mrr, 1.0);
        prop_assert_eq!(m.users, n);
    }
}
