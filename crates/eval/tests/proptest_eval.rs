//! Property-based tests on ranking metrics.

use proptest::prelude::*;
use seqrec_eval::{rank_of_target, MetricsAccumulator};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The computed rank equals the position of the target in a
    /// descending sort (ties counted against the target) of non-excluded
    /// candidates — the sort-based oracle.
    #[test]
    fn rank_matches_sort_oracle(
        scores in proptest::collection::vec(-10.0f32..10.0, 2..60),
        target_ix in 1usize..59,
        exclude in proptest::collection::vec(1u32..60, 0..10),
    ) {
        prop_assume!(target_ix < scores.len());
        let target = target_ix as u32;
        let rank = rank_of_target(&scores, target, &exclude);

        // oracle: sort candidate scores descending, count how many are >=
        // the target's score (excluding the target itself and exclusions)
        let mut excluded = vec![false; scores.len()];
        for &e in &exclude {
            if (e as usize) < scores.len() {
                excluded[e as usize] = true;
            }
        }
        excluded[target_ix] = false;
        let tscore = scores[target_ix];
        let better = scores
            .iter()
            .enumerate()
            .skip(1)
            .filter(|&(i, &s)| i != target_ix && !excluded[i] && s >= tscore)
            .count();
        prop_assert_eq!(rank, better);
    }

    /// Excluding more items can only improve (lower) the rank.
    #[test]
    fn exclusion_is_monotone(
        scores in proptest::collection::vec(-10.0f32..10.0, 3..40),
        target_ix in 1usize..39,
        extra in 1u32..40,
    ) {
        prop_assume!(target_ix < scores.len());
        prop_assume!((extra as usize) < scores.len());
        let target = target_ix as u32;
        let base = rank_of_target(&scores, target, &[]);
        let with = rank_of_target(&scores, target, &[extra]);
        prop_assert!(with <= base);
    }

    /// HR and NDCG are monotone in k, bounded in [0, 1], and NDCG ≤ HR.
    #[test]
    fn metric_bounds_and_monotonicity(
        ranks in proptest::collection::vec(0usize..100, 1..50),
    ) {
        let mut acc = MetricsAccumulator::new(&[1, 5, 10, 20]);
        for &r in &ranks {
            acc.push(r);
        }
        let m = acc.finish();
        let mut prev_hr = 0.0f64;
        let mut prev_ndcg = 0.0f64;
        for &k in &[1usize, 5, 10, 20] {
            let hr = m.hr_at(k);
            let ndcg = m.ndcg_at(k);
            prop_assert!((0.0..=1.0).contains(&hr));
            prop_assert!((0.0..=1.0).contains(&ndcg));
            prop_assert!(hr >= prev_hr, "HR not monotone in k");
            prop_assert!(ndcg >= prev_ndcg, "NDCG not monotone in k");
            prop_assert!(ndcg <= hr + 1e-12, "NDCG@{k} {ndcg} exceeds HR {hr}");
            prev_hr = hr;
            prev_ndcg = ndcg;
        }
        prop_assert!((0.0..=1.0).contains(&m.mrr));
    }

    /// MRR is bounded below by NDCG-at-infinity intuition: rank 0 users
    /// contribute 1.0 to all three; a rank beyond every k contributes only
    /// to MRR.
    #[test]
    fn perfect_ranks_maximise_everything(n in 1usize..30) {
        let mut acc = MetricsAccumulator::new(&[5]);
        for _ in 0..n {
            acc.push(0);
        }
        let m = acc.finish();
        prop_assert_eq!(m.hr_at(5), 1.0);
        prop_assert_eq!(m.ndcg_at(5), 1.0);
        prop_assert_eq!(m.mrr, 1.0);
        prop_assert_eq!(m.users, n);
    }
}
