//! Table formatting for experiment output.
//!
//! The experiment binaries print Table-2-style markdown: one row per
//! metric, one column per method, plus relative-improvement columns
//! matching the paper's `Improv.` columns.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use crate::metrics::RankingMetrics;

/// Results of all methods on one dataset.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DatasetResults {
    /// Dataset label.
    pub dataset: String,
    /// `(method name, metrics)` in presentation order.
    pub methods: Vec<(String, RankingMetrics)>,
}

impl DatasetResults {
    /// Creates an empty result set for `dataset`.
    pub fn new(dataset: impl Into<String>) -> Self {
        DatasetResults { dataset: dataset.into(), methods: Vec::new() }
    }

    /// Appends a method's metrics.
    pub fn push(&mut self, method: impl Into<String>, metrics: RankingMetrics) {
        self.methods.push((method.into(), metrics));
    }

    /// Metrics of `method`, if present.
    pub fn get(&self, method: &str) -> Option<&RankingMetrics> {
        self.methods.iter().find(|(m, _)| m == method).map(|(_, r)| r)
    }

    /// Renders a markdown table with HR@k / NDCG@k rows for each tracked k.
    /// When `improvement_over` names present methods, extra columns show the
    /// relative improvement of the **last** method over each of them
    /// (mirroring the paper's `Improv.#1 / #2`).
    pub fn to_markdown(&self, improvement_over: &[&str]) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}", self.dataset);
        let mut header = String::from("| Metric |");
        let mut rule = String::from("|---|");
        for (name, _) in &self.methods {
            let _ = write!(header, " {name} |");
            rule.push_str("---|");
        }
        for base in improvement_over {
            let _ = write!(header, " vs {base} |");
            rule.push_str("---|");
        }
        let _ = writeln!(out, "{header}");
        let _ = writeln!(out, "{rule}");

        let ks = match self.methods.first() {
            Some((_, m)) => m.ks.clone(),
            None => return out,
        };
        let last = self.methods.last().map(|(n, _)| n.clone()).unwrap_or_default();
        for metric in ["HR", "NDCG"] {
            for &k in &ks {
                let mut row = format!("| {metric}@{k} |");
                for (_, m) in &self.methods {
                    let v = if metric == "HR" { m.hr_at(k) } else { m.ndcg_at(k) };
                    let _ = write!(row, " {v:.4} |");
                }
                for base in improvement_over {
                    let imp = self.improvement(base, &last, metric, k);
                    match imp {
                        Some(p) => {
                            let _ = write!(row, " {p:+.2}% |");
                        }
                        None => row.push_str(" n/a |"),
                    }
                }
                let _ = writeln!(out, "{row}");
            }
        }
        out
    }

    /// Relative improvement (%) of `method` over `base` on `metric@k`.
    pub fn improvement(&self, base: &str, method: &str, metric: &str, k: usize) -> Option<f64> {
        let b = self.get(base)?;
        let m = self.get(method)?;
        let (bv, mv) =
            if metric == "HR" { (b.hr_at(k), m.hr_at(k)) } else { (b.ndcg_at(k), m.ndcg_at(k)) };
        if bv <= 0.0 {
            return None;
        }
        Some(100.0 * (mv - bv) / bv)
    }
}

/// Renders Table-1-style dataset statistics as markdown.
pub fn stats_markdown(rows: &[(String, seqrec_data::DatasetStats)]) -> String {
    let mut out = String::from(
        "| Dataset | #users | #items | #actions | avg.length | density |\n|---|---|---|---|---|---|\n",
    );
    for (name, s) in rows {
        let _ = writeln!(
            out,
            "| {name} | {} | {} | {} | {:.1} | {:.2}% |",
            s.users,
            s.items,
            s.actions,
            s.avg_length,
            100.0 * s.density
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsAccumulator;

    fn metrics(ranks: &[usize]) -> RankingMetrics {
        let mut acc = MetricsAccumulator::paper();
        for &r in ranks {
            acc.push(r);
        }
        acc.finish()
    }

    #[test]
    fn markdown_contains_all_methods_and_metrics() {
        let mut res = DatasetResults::new("beauty");
        res.push("SASRec", metrics(&[3, 8, 40]));
        res.push("CL4SRec", metrics(&[1, 4, 30]));
        let md = res.to_markdown(&["SASRec"]);
        assert!(md.contains("### beauty"));
        assert!(md.contains("| SASRec |"));
        assert!(md.contains("| CL4SRec |"));
        assert!(md.contains("HR@5"));
        assert!(md.contains("NDCG@20"));
        assert!(md.contains("vs SASRec"));
    }

    #[test]
    fn improvement_math() {
        let mut res = DatasetResults::new("d");
        res.push("a", metrics(&[0, 100])); // HR@5 = 0.5
        res.push("b", metrics(&[0, 0])); // HR@5 = 1.0
        let imp = res.improvement("a", "b", "HR", 5).unwrap();
        assert!((imp - 100.0).abs() < 1e-9);
    }

    #[test]
    fn improvement_over_zero_is_none() {
        let mut res = DatasetResults::new("d");
        res.push("a", metrics(&[100])); // HR@5 = 0
        res.push("b", metrics(&[0]));
        assert!(res.improvement("a", "b", "HR", 5).is_none());
        assert!(res.improvement("missing", "b", "HR", 5).is_none());
    }

    #[test]
    fn stats_table_renders() {
        let stats = seqrec_data::Dataset::new(vec![vec![1, 2, 3]], 3).stats();
        let md = stats_markdown(&[("toy".into(), stats)]);
        assert!(md.contains("| toy | 1 | 3 | 3 | 3.0 |"));
    }
}
