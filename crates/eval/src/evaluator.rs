//! Leave-one-out evaluation over the full catalog.

use rayon::prelude::*;
use seqrec_data::Split;

use crate::metrics::{rank_of_target, MetricsAccumulator, RankingMetrics, PAPER_KS};

/// A model that can score the whole catalog for a batch of users.
///
/// `score_full_catalog` receives, per user, the split-relative user index
/// and the raw (unpadded) chronological input history; it must return a
/// score vector of length `num_items() + 1` indexed by item id (entry 0 is
/// the pad id and is ignored by the evaluator). Sequential models use only
/// `inputs`; non-sequential baselines (BPR-MF, NCF, Pop) use only `users`.
pub trait SequenceScorer {
    /// Catalog size (max item id).
    fn num_items(&self) -> usize;
    /// Scores every item for each `(user, history)` pair.
    fn score_full_catalog(&self, users: &[usize], inputs: &[&[u32]]) -> Vec<Vec<f32>>;
}

/// Scoring factored into a cacheable per-user **encoder state** and a
/// state-to-catalog scoring step.
///
/// The serving stack (`seqrec-serve`) caches `encode_users` output per user
/// and re-scores from the cached rows, so the two halves must compose to
/// exactly the plain scorer: for every implementor,
/// `score_states(&encode_users(users, inputs))` is **bit-identical** to
/// `score_full_catalog(users, inputs)` — and each state row must not depend
/// on which other users shared the encode batch (the GEMM engine's
/// row-batch invariance, `seqrec-tensor/tests/row_invariance.rs`, makes
/// that hold through the encoders). `tests/serve_parity.rs` pins both
/// properties for every model in the zoo.
pub trait StatefulScorer: SequenceScorer {
    /// Scalars per user state row (≥ 1 so callers can recover the row
    /// count from a flat state buffer).
    fn state_dim(&self) -> usize;

    /// Encodes each `(user, history)` pair into one state row; returns the
    /// rows concatenated: `inputs.len() * state_dim()` scalars.
    fn encode_users(&self, users: &[usize], inputs: &[&[u32]]) -> Vec<f32>;

    /// Scores previously encoded state rows against the full catalog; one
    /// `num_items() + 1` score vector per row, same layout as
    /// [`SequenceScorer::score_full_catalog`].
    fn score_states(&self, states: &[f32]) -> Vec<Vec<f32>>;
}

/// Which held-out item to predict.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvalTarget {
    /// Predict the validation item from the training prefix.
    Valid,
    /// Predict the test item from the training prefix + validation item.
    Test,
}

/// Evaluation options.
#[derive(Clone, Debug)]
pub struct EvalOptions {
    /// Users scored per model call.
    pub batch_size: usize,
    /// Metric cut-offs.
    pub ks: Vec<usize>,
    /// Optional subset of user indices to evaluate (None = all users).
    pub users: Option<Vec<usize>>,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions { batch_size: 256, ks: PAPER_KS.to_vec(), users: None }
    }
}

/// Evaluates `model` on `split` with full-catalog ranking (§4.1.2): for each
/// user, every item the user has not interacted with is a ranking candidate.
pub fn evaluate(
    model: &impl SequenceScorer,
    split: &Split,
    target: EvalTarget,
    opts: &EvalOptions,
) -> RankingMetrics {
    let _span = seqrec_obs::span!("eval");
    let catalog = model.num_items() + 1;
    let users: Vec<usize> = match &opts.users {
        Some(u) => u.clone(),
        None => (0..split.num_users()).collect(),
    };
    seqrec_obs::metrics::EVAL_USERS.add(users.len() as u64);
    let mut acc = MetricsAccumulator::new(&opts.ks);
    for chunk in users.chunks(opts.batch_size.max(1)) {
        let inputs: Vec<Vec<u32>> = chunk
            .iter()
            .map(|&u| match target {
                EvalTarget::Valid => split.valid_input(u),
                EvalTarget::Test => split.test_input(u),
            })
            .collect();
        let input_refs: Vec<&[u32]> = inputs.iter().map(Vec::as_slice).collect();
        let scores = {
            let _score = seqrec_obs::span!("eval.score");
            model.score_full_catalog(chunk, &input_refs)
        };
        assert_eq!(scores.len(), chunk.len(), "scorer returned wrong batch size");

        let _rank = seqrec_obs::span!("eval.rank");
        let shard = chunk
            .par_iter()
            .zip(scores.par_iter())
            .map(|(&u, s)| {
                assert_eq!(s.len(), catalog, "score vector must cover ids 0..=num_items");
                let goal = match target {
                    EvalTarget::Valid => split.valid_target(u),
                    EvalTarget::Test => split.test_target(u),
                };
                let exclude = split.user_items(u);
                rank_of_target(s, goal, &exclude)
            })
            .fold(
                || MetricsAccumulator::new(&opts.ks),
                |mut m, rank| {
                    m.push(rank);
                    m
                },
            )
            .reduce(
                || MetricsAccumulator::new(&opts.ks),
                |mut a, b| {
                    a.merge(&b);
                    a
                },
            );
        acc.merge(&shard);
    }
    acc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqrec_data::Dataset;

    /// Oracle scorer: always scores the user's true next item highest by
    /// cheating — it scores item `last + 1` highest (the test dataset is
    /// built so the next item is always `last + 1`).
    struct SuccessorOracle {
        num_items: usize,
    }

    impl SequenceScorer for SuccessorOracle {
        fn num_items(&self) -> usize {
            self.num_items
        }
        fn score_full_catalog(&self, _users: &[usize], inputs: &[&[u32]]) -> Vec<Vec<f32>> {
            inputs
                .iter()
                .map(|seq| {
                    let mut s = vec![0.0f32; self.num_items + 1];
                    if let Some(&last) = seq.last() {
                        let next = (last as usize + 1).min(self.num_items);
                        s[next] = 10.0;
                    }
                    s
                })
                .collect()
        }
    }

    fn runs_dataset() -> Dataset {
        // users interact with consecutive runs: 1,2,3,4,5 etc.
        Dataset::new(vec![vec![1, 2, 3, 4, 5], vec![2, 3, 4, 5, 6], vec![3, 4, 5, 6, 7]], 50)
    }

    #[test]
    fn oracle_achieves_perfect_metrics() {
        let split = Split::leave_one_out(&runs_dataset());
        let model = SuccessorOracle { num_items: 50 };
        let m = evaluate(&model, &split, EvalTarget::Test, &EvalOptions::default());
        assert_eq!(m.users, 3);
        assert_eq!(m.hr_at(5), 1.0);
        assert_eq!(m.ndcg_at(5), 1.0);
        assert_eq!(m.mrr, 1.0);
        // validation target is the successor of the training prefix too
        let v = evaluate(&model, &split, EvalTarget::Valid, &EvalOptions::default());
        assert_eq!(v.hr_at(5), 1.0);
    }

    #[test]
    fn constant_scorer_is_penalised_by_pessimistic_ties() {
        struct Flat {
            num_items: usize,
        }
        impl SequenceScorer for Flat {
            fn num_items(&self) -> usize {
                self.num_items
            }
            fn score_full_catalog(&self, _users: &[usize], inputs: &[&[u32]]) -> Vec<Vec<f32>> {
                inputs.iter().map(|_| vec![1.0; self.num_items + 1]).collect()
            }
        }
        let split = Split::leave_one_out(&runs_dataset());
        let m =
            evaluate(&Flat { num_items: 50 }, &split, EvalTarget::Test, &EvalOptions::default());
        // all candidates tie → the target ranks behind every other candidate
        assert_eq!(m.hr_at(20), 0.0);
    }

    #[test]
    fn user_subset_restricts_evaluation() {
        let split = Split::leave_one_out(&runs_dataset());
        let model = SuccessorOracle { num_items: 50 };
        let opts = EvalOptions { users: Some(vec![0]), ..Default::default() };
        let m = evaluate(&model, &split, EvalTarget::Test, &opts);
        assert_eq!(m.users, 1);
    }

    #[test]
    fn tiny_batches_give_identical_results() {
        let split = Split::leave_one_out(&runs_dataset());
        let model = SuccessorOracle { num_items: 50 };
        let small = EvalOptions { batch_size: 1, ..Default::default() };
        let big = EvalOptions { batch_size: 64, ..Default::default() };
        assert_eq!(
            evaluate(&model, &split, EvalTarget::Test, &small),
            evaluate(&model, &split, EvalTarget::Test, &big)
        );
    }
}
