//! Ranking metrics: HR@k, NDCG@k, MRR.
//!
//! Following §4.1.2 of the paper, evaluation ranks the target against the
//! **whole** item catalog (no sampled metrics — Krichene & Rendle show
//! sampling distorts comparisons), excluding items the user has already
//! interacted with.

use serde::{Deserialize, Serialize};

/// Rank cut-offs reported by the paper.
pub const PAPER_KS: [usize; 3] = [5, 10, 20];

/// Computes the 0-based rank of `target` among all non-excluded items.
///
/// `scores[i]` is the model score of item id `i` (index 0 is the pad id and
/// is always ignored). Items in `exclude` are skipped (the target itself is
/// never excluded even if listed). Ties count as ranked above the target
/// (pessimistic, so metrics never benefit from degenerate constant scores).
pub fn rank_of_target(scores: &[f32], target: u32, exclude: &[u32]) -> usize {
    let t = target as usize;
    assert!(t >= 1 && t < scores.len(), "target {t} outside catalog 1..{}", scores.len());
    let target_score = scores[t];
    let mut excluded = vec![false; scores.len()];
    for &e in exclude {
        if (e as usize) < excluded.len() {
            excluded[e as usize] = true;
        }
    }
    excluded[t] = false;
    let mut rank = 0usize;
    for (i, &s) in scores.iter().enumerate().skip(1) {
        if i == t || excluded[i] {
            continue;
        }
        if s >= target_score {
            rank += 1;
        }
    }
    rank
}

/// Aggregated ranking metrics over a user population.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RankingMetrics {
    /// Cut-offs, parallel with `hr` and `ndcg`.
    pub ks: Vec<usize>,
    /// Hit ratio at each cut-off.
    pub hr: Vec<f64>,
    /// Normalised DCG at each cut-off.
    pub ndcg: Vec<f64>,
    /// Mean reciprocal rank.
    pub mrr: f64,
    /// Number of evaluated users.
    pub users: usize,
}

impl RankingMetrics {
    /// HR at cut-off `k`.
    ///
    /// # Panics
    /// Panics if `k` was not accumulated.
    pub fn hr_at(&self, k: usize) -> f64 {
        self.hr[self.index(k)]
    }

    /// NDCG at cut-off `k`.
    ///
    /// # Panics
    /// Panics if `k` was not accumulated.
    pub fn ndcg_at(&self, k: usize) -> f64 {
        self.ndcg[self.index(k)]
    }

    fn index(&self, k: usize) -> usize {
        self.ks
            .iter()
            .position(|&kk| kk == k)
            .unwrap_or_else(|| panic!("cut-off {k} not tracked (have {:?})", self.ks))
    }
}

/// Streaming accumulator: feed one rank per user, then [`finish`].
///
/// [`finish`]: MetricsAccumulator::finish
#[derive(Clone, Debug)]
pub struct MetricsAccumulator {
    ks: Vec<usize>,
    hits: Vec<u64>,
    ndcg: Vec<f64>,
    mrr: f64,
    users: usize,
}

impl MetricsAccumulator {
    /// Accumulator for the given cut-offs.
    pub fn new(ks: &[usize]) -> Self {
        MetricsAccumulator {
            ks: ks.to_vec(),
            hits: vec![0; ks.len()],
            ndcg: vec![0.0; ks.len()],
            mrr: 0.0,
            users: 0,
        }
    }

    /// Accumulator with the paper's cut-offs (5, 10, 20).
    pub fn paper() -> Self {
        Self::new(&PAPER_KS)
    }

    /// Adds one user's 0-based target rank.
    pub fn push(&mut self, rank: usize) {
        self.users += 1;
        self.mrr += 1.0 / (rank + 1) as f64;
        for (i, &k) in self.ks.iter().enumerate() {
            if rank < k {
                self.hits[i] += 1;
                self.ndcg[i] += 1.0 / ((rank + 2) as f64).log2();
            }
        }
    }

    /// Merges another accumulator (for parallel evaluation shards).
    ///
    /// # Panics
    /// Panics if the cut-offs differ.
    pub fn merge(&mut self, other: &MetricsAccumulator) {
        assert_eq!(self.ks, other.ks, "cannot merge accumulators with different ks");
        for i in 0..self.ks.len() {
            self.hits[i] += other.hits[i];
            self.ndcg[i] += other.ndcg[i];
        }
        self.mrr += other.mrr;
        self.users += other.users;
    }

    /// Finalises into averages.
    pub fn finish(&self) -> RankingMetrics {
        let n = self.users.max(1) as f64;
        RankingMetrics {
            ks: self.ks.clone(),
            hr: self.hits.iter().map(|&h| h as f64 / n).collect(),
            ndcg: self.ndcg.iter().map(|&d| d / n).collect(),
            mrr: self.mrr / n,
            users: self.users,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_counts_strictly_better_and_ties() {
        //            pad   1    2    3    4
        let scores = [0.0, 0.5, 0.9, 0.5, 0.1];
        // target 1 (0.5): item 2 is better, item 3 ties (pessimistic) → 2
        assert_eq!(rank_of_target(&scores, 1, &[]), 2);
        // target 2 is the best → rank 0
        assert_eq!(rank_of_target(&scores, 2, &[]), 0);
        // excluding item 2 improves target 1's rank to 1 (tie with 3)
        assert_eq!(rank_of_target(&scores, 1, &[2]), 1);
    }

    #[test]
    fn target_is_never_self_excluded() {
        let scores = [0.0, 1.0, 0.0];
        assert_eq!(rank_of_target(&scores, 1, &[1]), 0);
    }

    #[test]
    fn pad_id_is_ignored() {
        let scores = [99.0, 0.5, 0.1];
        assert_eq!(rank_of_target(&scores, 1, &[]), 0);
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_catalog_target() {
        rank_of_target(&[0.0, 1.0], 5, &[]);
    }

    #[test]
    fn hr_and_ndcg_definitions() {
        let mut acc = MetricsAccumulator::new(&[1, 2]);
        acc.push(0); // hit@1 and @2, ndcg contribution 1.0
        acc.push(1); // hit@2 only, ndcg 1/log2(3)
        acc.push(5); // miss
        let m = acc.finish();
        assert_eq!(m.users, 3);
        assert!((m.hr_at(1) - 1.0 / 3.0).abs() < 1e-12);
        assert!((m.hr_at(2) - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.ndcg_at(1) - 1.0 / 3.0).abs() < 1e-12);
        let expected_ndcg2 = (1.0 + 1.0 / 3f64.log2()) / 3.0;
        assert!((m.ndcg_at(2) - expected_ndcg2).abs() < 1e-12);
        let expected_mrr = (1.0 + 0.5 + 1.0 / 6.0) / 3.0;
        assert!((m.mrr - expected_mrr).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential_accumulation() {
        let mut a = MetricsAccumulator::paper();
        let mut b = MetricsAccumulator::paper();
        let mut whole = MetricsAccumulator::paper();
        for (i, &r) in [0usize, 3, 7, 12, 25].iter().enumerate() {
            whole.push(r);
            if i % 2 == 0 {
                a.push(r);
            } else {
                b.push(r);
            }
        }
        a.merge(&b);
        let (ma, mw) = (a.finish(), whole.finish());
        assert_eq!(ma.users, mw.users);
        assert_eq!(ma.hr, mw.hr);
        for (x, y) in ma.ndcg.iter().zip(&mw.ndcg) {
            assert!((x - y).abs() < 1e-12);
        }
        assert!((ma.mrr - mw.mrr).abs() < 1e-12);
    }

    #[test]
    fn perfect_and_worst_cases() {
        let mut perfect = MetricsAccumulator::paper();
        perfect.push(0);
        let m = perfect.finish();
        assert_eq!(m.hr_at(5), 1.0);
        assert_eq!(m.ndcg_at(5), 1.0);
        assert_eq!(m.mrr, 1.0);

        let mut worst = MetricsAccumulator::paper();
        worst.push(10_000);
        let w = worst.finish();
        assert_eq!(w.hr_at(20), 0.0);
        assert_eq!(w.ndcg_at(20), 0.0);
    }

    #[test]
    fn empty_accumulator_finishes_to_zeroes() {
        let m = MetricsAccumulator::paper().finish();
        assert_eq!(m.users, 0);
        assert_eq!(m.hr_at(5), 0.0);
    }
}
