//! # seqrec-eval
//!
//! Full-catalog ranking evaluation for the CL4SRec reproduction. Implements
//! the paper's protocol exactly (§4.1.2): leave-one-out targets, ranking
//! against **every** item the user has not interacted with (no sampled
//! metrics), HR@k / NDCG@k / MRR, evaluated in parallel with rayon.
//!
//! Models implement [`SequenceScorer`]; [`evaluate`] drives batched scoring
//! and metric accumulation. [`report`] renders Table-1/Table-2-style
//! markdown.

#![warn(missing_docs)]

pub mod evaluator;
pub mod metrics;
pub mod report;

pub use evaluator::{evaluate, EvalOptions, EvalTarget, SequenceScorer, StatefulScorer};
pub use metrics::{rank_of_target, MetricsAccumulator, RankingMetrics, PAPER_KS};
pub use report::{stats_markdown, DatasetResults};
