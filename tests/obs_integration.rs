//! Telemetry integration guards.
//!
//! 1. **RNG neutrality**: running the golden training scenarios with a JSONL
//!    sink installed must reproduce the committed fixtures bit-for-bit —
//!    instrumentation must never touch the seeded ChaCha streams or reorder
//!    any floating-point work.
//! 2. **Trace shape**: a full CL4SRec pre-train + fine-tune run with the
//!    Chrome sink produces one valid JSON array whose span events nest as
//!    epoch → batch → augment/forward/ntxent/backward/optim, i.e. the trace
//!    opens as a meaningful flame chart.
//!
//! The sink is process-global, so both tests serialise on `SINK_LOCK`.

use std::sync::{Arc, Mutex, MutexGuard};

use cl4srec::augment::AugmentationSet;
use cl4srec::model::{Cl4sRec, Cl4sRecConfig, PretrainOptions};
use seqrec_conformance::golden::{run_cl4srec_golden, run_sasrec_golden, GoldenRecord};
use seqrec_data::{Dataset, Split};
use seqrec_models::encoder::EncoderConfig;
use seqrec_models::TrainOptions;
use seqrec_obs::json::{self, Value};
use seqrec_obs::sink::{self, SharedBuf};
use seqrec_obs::JsonlSink;

static SINK_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    SINK_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn fixture(name: &str) -> GoldenRecord {
    let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
    GoldenRecord::from_text(&text)
        .unwrap_or_else(|e| panic!("corrupt fixture {}: {e}", path.display()))
}

#[test]
fn golden_fixtures_survive_an_active_jsonl_sink() {
    let _g = lock();
    let buf = SharedBuf::new();
    sink::install(Arc::new(JsonlSink::to_writer(Box::new(buf.clone()))));
    let sasrec = run_sasrec_golden();
    let cl4srec = run_cl4srec_golden();
    sink::uninstall();

    // The sink really was live during both runs (backward spans recorded)…
    let events = buf.contents();
    assert!(
        events.contains(r#""name":"backward""#),
        "sink captured no backward spans — the guard tested nothing"
    );
    // …and telemetry changed no bit of the training trajectory.
    assert_eq!(
        sasrec,
        fixture("sasrec.golden"),
        "sasrec trajectory drifted when the JSONL sink was enabled"
    );
    assert_eq!(
        cl4srec,
        fixture("cl4srec.golden"),
        "cl4srec trajectory drifted when the JSONL sink was enabled"
    );
}

fn toy_dataset() -> Dataset {
    let seqs = (0..24).map(|u| (0..8).map(|i| ((u + i) % 12) as u32 + 1).collect()).collect();
    Dataset::new(seqs, 12)
}

fn tiny_cfg(num_items: usize) -> Cl4sRecConfig {
    Cl4sRecConfig {
        encoder: EncoderConfig { num_items, d: 16, heads: 2, layers: 1, max_len: 8, dropout: 0.1 },
        tau: 0.5,
    }
}

#[test]
fn cl4srec_two_stage_run_emits_a_nested_chrome_trace() {
    let _g = lock();
    let path = std::env::temp_dir().join(format!("cl4srec_trace_{}.json", std::process::id()));
    {
        let cfg = seqrec_obs::ObsConfig {
            chrome: Some(path.display().to_string()),
            ..Default::default()
        };
        let _obs = seqrec_obs::init_with(&cfg);
        let split = Split::leave_one_out(&toy_dataset());
        let mut model = Cl4sRec::new(tiny_cfg(12), 9);
        let augs = AugmentationSet::paper_full(0.6, 0.3, 0.5, model.mask_token());
        let pre =
            PretrainOptions { epochs: 2, batch_size: 8, patience: None, ..Default::default() };
        let fine = TrainOptions {
            epochs: 2,
            batch_size: 8,
            patience: None,
            valid_probe_users: 8,
            ..Default::default()
        };
        let (pre_report, fine_report) = model.fit(&split, &augs, &pre, &fine);
        assert_eq!(pre_report.losses.len(), 2);
        assert_eq!(pre_report.epoch_secs.len(), 2);
        assert_eq!(fine_report.epochs_run(), 2);
        assert!(fine_report.total_train_secs > 0.0);
        assert!(fine_report.epochs.iter().all(|e| e.probe_secs > 0.0), "probe time not recorded");
        assert!(fine_report.mean_seqs_per_sec > 0.0);
    } // ObsGuard drop writes the closing `]`

    let text = std::fs::read_to_string(&path).expect("trace file written");
    let _ = std::fs::remove_file(&path);
    let doc = json::parse(&text).unwrap_or_else(|e| panic!("trace is not valid JSON: {e}"));
    let events = doc.as_arr().expect("chrome trace is a JSON array");

    // Replay the B/E stream as a bracket sequence, recording each span's
    // parent name at open time.
    let mut stack: Vec<&str> = Vec::new();
    let mut child_of: Vec<(String, String)> = Vec::new(); // (name, parent)
    for ev in events {
        match ev.get("ph").and_then(Value::as_str) {
            Some("B") => {
                let name = ev.get("name").and_then(Value::as_str).expect("name");
                let parent = stack.last().copied().unwrap_or("<root>");
                child_of.push((name.to_string(), parent.to_string()));
                stack.push(name);
            }
            Some("E") => {
                let name = ev.get("name").and_then(Value::as_str).expect("name");
                assert_eq!(stack.pop(), Some(name), "mismatched E event");
            }
            _ => {}
        }
    }
    assert!(stack.is_empty(), "trace ended with unclosed spans: {stack:?}");

    let count = |name: &str, parent: &str| {
        child_of.iter().filter(|(n, p)| n == name && p == parent).count()
    };
    // Two pre-training epochs + two fine-tuning epochs at the root.
    assert_eq!(count("epoch", "<root>"), 4);
    assert!(count("batch", "epoch") >= 4, "expected batches inside epochs");
    // Pre-training batches: augmentation, the two-view forward and NT-Xent
    // all nest inside the batch span.
    assert!(count("augment", "forward") == 0, "augment must precede forward, not nest in it");
    assert!(count("augment", "batch") > 0, "augment spans missing:\n{child_of:?}");
    assert!(count("ntxent", "batch") > 0, "ntxent spans missing");
    // Both stages: forward, backward and the optimiser inside every batch.
    assert!(count("forward", "batch") > 0, "forward spans missing");
    assert!(count("backward", "batch") > 0, "backward spans missing");
    assert!(count("optim", "batch") > 0, "optim spans missing");
    // The fine-tune probe runs the evaluator under its own span.
    assert!(count("probe", "epoch") > 0, "probe spans missing");
    assert!(count("eval", "probe") > 0, "eval spans missing under probe");
}

#[test]
fn profiler_folds_a_two_stage_trace_and_exclusive_times_sum_to_wall_clock() {
    let _g = lock();
    let buf = SharedBuf::new();
    sink::install(Arc::new(JsonlSink::to_writer(Box::new(buf.clone()))));
    let split = Split::leave_one_out(&toy_dataset());
    let mut model = Cl4sRec::new(tiny_cfg(12), 9);
    let augs = AugmentationSet::paper_full(0.6, 0.3, 0.5, model.mask_token());
    let pre = PretrainOptions { epochs: 2, batch_size: 8, patience: None, ..Default::default() };
    let fine = TrainOptions {
        epochs: 2,
        batch_size: 8,
        patience: None,
        valid_probe_users: 8,
        ..Default::default()
    };
    model.fit(&split, &augs, &pre, &fine);
    sink::uninstall();

    let events = seqrec_obs::profile::parse_auto(&buf.contents())
        .unwrap_or_else(|e| panic!("trace did not parse: {e}"));
    let profile = seqrec_obs::profile::Profile::build(&events)
        .unwrap_or_else(|e| panic!("trace did not fold: {e}"));

    // Acceptance criterion: the per-phase exclusive times must sum back to
    // the wall-clock span time within 1%.
    let total = profile.total_us();
    assert!(total > 0, "profile has no wall-clock time");
    let excl_sum: u64 = (0..profile.nodes().len()).map(|i| profile.exclusive_us(i)).sum();
    let drift = (excl_sum as f64 - total as f64).abs() / total as f64;
    assert!(
        drift <= 0.01,
        "exclusive times sum to {excl_sum}us but wall-clock is {total}us ({:.2}% drift)",
        drift * 100.0
    );

    // Both training phases appear with the expected structure.
    let tree = profile.render_tree();
    for phase in ["epoch", "batch", "forward", "backward", "optim"] {
        assert!(tree.contains(phase), "span `{phase}` missing from profile:\n{tree}");
    }
    let top = profile.top_exclusive(5);
    assert!(!top.is_empty());
    assert!(top.iter().all(|(path, ..)| !path.is_empty()));
    let folded = profile.folded_stacks();
    assert!(
        folded.lines().any(|l| l.contains(";")),
        "folded stacks carry no nested paths:\n{folded}"
    );
}
