//! Concurrency guarantees of the metric registry: instruments hammered
//! from a real worker pool while a reader snapshots mid-flight must never
//! produce a torn view.
//!
//! The pinned invariants (see `crates/obs/src/metrics.rs` § "Snapshot
//! consistency"):
//!
//! * a histogram bumps its total **before** its bucket, and a snapshot
//!   reads buckets **before** the total — so `Σ buckets + overflow ≤
//!   total` in every mid-flight read, with equality at quiescence;
//! * counter and histogram totals are monotonic under concurrent writes;
//! * a gauge's peak is never below any level a reader observed.
//!
//! Each test uses its own static instruments (the registry's instruments
//! are process-global and other tests in this binary may touch them).

use std::sync::atomic::{AtomicBool, Ordering};

use proptest::prelude::*;
use seqrec_obs::metrics::{self, Counter, Gauge, Histogram, WindowedHistogram};

const BOUNDS: &[u64] = &[4, 16, 64, 256, 1024];

static HIST: Histogram = Histogram::new("test.concurrency.hist", BOUNDS);
static COUNTER: Counter = Counter::new("test.concurrency.counter");
static GAUGE: Gauge = Gauge::new("test.concurrency.gauge");
static WINDOWED: WindowedHistogram = WindowedHistogram::new("test.concurrency.window", BOUNDS);

/// Deterministic per-writer value stream (splitmix64).
fn values(seed: u64, n: usize) -> Vec<u64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) % 2048 // spans every bucket plus the overflow region
        })
        .collect()
}

/// Runs `writers` pool tasks each recording `per_writer` samples into the
/// shared instruments while the calling thread polls `reader` against the
/// in-flight state; returns the values every writer recorded.
fn hammer(
    writers: usize,
    per_writer: usize,
    seed: u64,
    mut reader: impl FnMut() -> Result<(), TestCaseError>,
) -> Result<Vec<u64>, TestCaseError> {
    let pool =
        rayon::ThreadPoolBuilder::new().num_threads(writers).build().expect("test pool builds");
    let streams: Vec<Vec<u64>> =
        (0..writers).map(|w| values(seed ^ ((w as u64) << 32), per_writer)).collect();
    let done = AtomicBool::new(false);
    let mut poll_result = Ok(());
    std::thread::scope(|ts| {
        let streams = &streams;
        let done = &done;
        ts.spawn(move || {
            pool.install(|| {
                rayon::scope(|s| {
                    for stream in streams {
                        s.spawn(move |_| {
                            for &v in stream {
                                HIST.record(v);
                                WINDOWED.record(v);
                                COUNTER.add(1);
                                GAUGE.add(1);
                                GAUGE.add(-1);
                            }
                        });
                    }
                });
            });
            done.store(true, Ordering::Release);
        });
        // Race the pool: keep snapshotting until every writer finished.
        while !done.load(Ordering::Acquire) {
            if poll_result.is_ok() {
                poll_result = reader();
            }
            std::hint::spin_loop();
        }
    });
    poll_result?;
    // One quiescent read too, so the invariants also hold at rest.
    reader()?;
    Ok(streams.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Mid-flight histogram snapshots never tear: the bucket sum can lag
    /// the total (a writer between its two bumps) but never exceed it,
    /// and the total never moves backwards.
    #[test]
    fn histogram_snapshots_never_tear_under_pool_writes(
        writers in 2usize..5,
        per_writer in 64usize..512,
        seed in 0u64..1_000,
    ) {
        // One epoch outlives the test: window reads get the same strict
        // invariant as cumulative ones (no slot rotates mid-assert).
        metrics::set_window_secs(1e6);
        HIST.reset();
        WINDOWED.reset();
        COUNTER.reset();
        GAUGE.reset();

        let mut last_total = 0u64;
        let mut last_counter = 0u64;
        let recorded = hammer(writers, per_writer, seed, || {
            let counts = HIST.counts();
            let overflow = HIST.overflow();
            let total = HIST.total();
            let seen: u64 = counts.iter().sum::<u64>() + overflow;
            prop_assert!(seen <= total, "torn snapshot: buckets {seen} > total {total}");
            prop_assert!(total >= last_total, "total went backwards: {total} < {last_total}");
            last_total = total;

            let c = COUNTER.get();
            prop_assert!(c >= last_counter, "counter went backwards");
            last_counter = c;

            let w = WINDOWED.window_snapshot();
            let wseen: u64 = w.counts.iter().sum::<u64>() + w.overflow;
            prop_assert!(wseen <= w.total, "torn window: buckets {wseen} > total {}", w.total);
            Ok(())
        })?;

        // Quiescent equality: nothing was lost or double-counted.
        let n = recorded.len() as u64;
        prop_assert_eq!(HIST.total(), n);
        prop_assert_eq!(HIST.counts().iter().sum::<u64>() + HIST.overflow(), n);
        prop_assert_eq!(HIST.sum(), recorded.iter().sum::<u64>());
        prop_assert_eq!(COUNTER.get(), n);
        let w = WINDOWED.window_snapshot();
        prop_assert_eq!(w.total, n, "window lost samples despite the huge epoch");
        prop_assert_eq!(w.sum, recorded.iter().sum::<u64>());
        prop_assert_eq!(GAUGE.get(), 0);
        prop_assert!(GAUGE.peak() >= 1 && GAUGE.peak() <= writers as i64 + 1);
    }
}

/// `metrics::snapshot()` taken while the serve instruments are being
/// written stays internally consistent for every histogram it contains.
#[test]
fn registry_snapshot_is_consistent_mid_serve_traffic() {
    use seqrec_obs::metrics::MetricValue;

    metrics::reset_all();
    let pool = rayon::ThreadPoolBuilder::new().num_threads(3).build().expect("pool");
    let done = AtomicBool::new(false);
    std::thread::scope(|ts| {
        let done = &done;
        ts.spawn(move || {
            pool.install(|| {
                rayon::scope(|s| {
                    for t in 0..3u64 {
                        s.spawn(move |_| {
                            let mut i = 0u64;
                            while !done.load(Ordering::Acquire) {
                                metrics::SERVE_LATENCY_US.record(t * 1_000 + i % 7_000);
                                metrics::SERVE_QUEUE_DEPTH.record(i % 40);
                                metrics::SERVE_REQUESTS.incr();
                                i += 1;
                            }
                        });
                    }
                });
            });
        });
        for _ in 0..200 {
            for reading in metrics::snapshot() {
                if let MetricValue::Histogram { counts, overflow, total, .. } = reading.value {
                    let seen: u64 = counts.iter().sum::<u64>() + overflow;
                    assert!(
                        seen <= total,
                        "torn registry snapshot for {}: {seen} > {total}",
                        reading.name
                    );
                }
            }
        }
        done.store(true, Ordering::Release);
    });
    metrics::reset_all();
}
