//! Determinism guarantees: identical seeds produce bit-identical datasets,
//! training trajectories and metrics; different seeds do not.

use cp4rec_repro::cl4srec::augment::{AugmentationSet, Mask};
use cp4rec_repro::cl4srec::model::{Cl4sRec, Cl4sRecConfig, PretrainOptions};
use cp4rec_repro::data::synthetic::{generate_dataset, SyntheticConfig};
use cp4rec_repro::data::Split;
use cp4rec_repro::eval::{evaluate, EvalOptions, EvalTarget, RankingMetrics};
use cp4rec_repro::models::{EncoderConfig, SasRec, TrainOptions};

fn tiny_dataset(seed: u64) -> SyntheticConfig {
    SyntheticConfig {
        name: "repro".into(),
        num_users: 250,
        num_items: 100,
        avg_len: 8.5,
        num_categories: 5,
        stay_prob: 0.8,
        zipf_exponent: 0.8,
        noise_prob: 0.05,
        seed,
    }
}

fn train_and_eval(data_seed: u64, model_seed: u64) -> RankingMetrics {
    let dataset = generate_dataset(&tiny_dataset(data_seed));
    let split = Split::leave_one_out(&dataset);
    let cfg = EncoderConfig {
        num_items: dataset.num_items(),
        d: 16,
        heads: 2,
        layers: 1,
        max_len: 10,
        dropout: 0.1,
    };
    let mut model = SasRec::new(cfg, model_seed);
    model.fit(
        &split,
        &TrainOptions {
            epochs: 3,
            batch_size: 64,
            seed: model_seed,
            patience: None,
            valid_probe_users: 40,
            ..Default::default()
        },
    );
    evaluate(&model, &split, EvalTarget::Test, &EvalOptions::default())
}

#[test]
fn identical_seeds_reproduce_metrics_exactly() {
    let a = train_and_eval(11, 7);
    let b = train_and_eval(11, 7);
    assert_eq!(a, b, "same seeds must give bit-identical metrics");
}

#[test]
fn different_model_seeds_change_the_outcome() {
    let a = train_and_eval(11, 7);
    let b = train_and_eval(11, 8);
    assert_ne!(a, b, "different init/shuffling should change results");
}

#[test]
fn different_data_seeds_change_the_dataset() {
    let a = generate_dataset(&tiny_dataset(1));
    let b = generate_dataset(&tiny_dataset(2));
    assert_ne!(a.sequences(), b.sequences());
}

#[test]
fn cl4srec_pipeline_is_deterministic_too() {
    let run = || {
        let dataset = generate_dataset(&tiny_dataset(5));
        let split = Split::leave_one_out(&dataset);
        let cfg = Cl4sRecConfig {
            encoder: EncoderConfig {
                num_items: dataset.num_items(),
                d: 16,
                heads: 2,
                layers: 1,
                max_len: 10,
                dropout: 0.1,
            },
            tau: 0.5,
        };
        let mut model = Cl4sRec::new(cfg, 9);
        let augs = AugmentationSet::single(Mask { gamma: 0.5, mask_token: model.mask_token() });
        let (pre, _) = model.fit(
            &split,
            &augs,
            &PretrainOptions { epochs: 2, batch_size: 64, seed: 3, ..Default::default() },
            &TrainOptions {
                epochs: 2,
                batch_size: 64,
                seed: 3,
                patience: None,
                valid_probe_users: 40,
                ..Default::default()
            },
        );
        let m = evaluate(&model, &split, EvalTarget::Test, &EvalOptions::default());
        (pre.losses, m)
    };
    let (losses_a, metrics_a) = run();
    let (losses_b, metrics_b) = run();
    assert_eq!(losses_a, losses_b);
    assert_eq!(metrics_a, metrics_b);
}
