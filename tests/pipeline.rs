//! End-to-end integration: synthetic generation → 5-core preprocessing →
//! leave-one-out split → training → full-catalog evaluation, across crates.

use cp4rec_repro::cl4srec::augment::{AugmentationSet, Crop, Mask, Reorder};
use cp4rec_repro::cl4srec::model::{Cl4sRec, Cl4sRecConfig, PretrainOptions};
use cp4rec_repro::data::five_core::{five_core, is_k_core};
use cp4rec_repro::data::synthetic::{generate_log, SyntheticConfig};
use cp4rec_repro::data::{build_dataset, Split};
use cp4rec_repro::eval::{evaluate, EvalOptions, EvalTarget};
use cp4rec_repro::models::{EncoderConfig, Pop, SasRec, TrainOptions};

fn tiny_config() -> SyntheticConfig {
    SyntheticConfig {
        name: "it".into(),
        num_users: 300,
        num_items: 120,
        avg_len: 9.0,
        num_categories: 6,
        stay_prob: 0.8,
        zipf_exponent: 0.8,
        noise_prob: 0.05,
        seed: 3,
    }
}

fn tiny_encoder(num_items: usize) -> EncoderConfig {
    EncoderConfig { num_items, d: 16, heads: 2, layers: 1, max_len: 12, dropout: 0.1 }
}

#[test]
fn full_pipeline_preserves_invariants() {
    let log = generate_log(&tiny_config());
    let filtered = five_core(&log);
    assert!(is_k_core(&filtered, 5), "preprocessing must yield a 5-core");
    let dataset = build_dataset(&filtered);
    assert!(dataset.num_users() > 100);
    // dense ids: every id in 1..=num_items appears
    let pop = dataset.item_popularity();
    assert!(pop[1..].iter().all(|&c| c > 0), "reindexing left gaps");

    let split = Split::leave_one_out(&dataset);
    assert_eq!(split.num_users(), dataset.num_users());
    for u in 0..split.num_users() {
        let orig = dataset.sequence(u);
        let n = orig.len();
        assert_eq!(split.train_sequence(u), &orig[..n - 2]);
        assert_eq!(split.valid_target(u), orig[n - 2]);
        assert_eq!(split.test_target(u), orig[n - 1]);
    }
}

#[test]
fn trained_sasrec_beats_untrained_and_pop_is_sane() {
    let dataset = build_dataset(&five_core(&generate_log(&tiny_config())));
    let split = Split::leave_one_out(&dataset);
    let eval_opts = EvalOptions::default();

    let untrained = SasRec::new(tiny_encoder(dataset.num_items()), 1);
    let before = evaluate(&untrained, &split, EvalTarget::Test, &eval_opts);

    let mut trained = SasRec::new(tiny_encoder(dataset.num_items()), 1);
    trained.fit(
        &split,
        &TrainOptions {
            epochs: 6,
            batch_size: 64,
            patience: None,
            valid_probe_users: 50,
            ..Default::default()
        },
    );
    let after = evaluate(&trained, &split, EvalTarget::Test, &eval_opts);
    assert!(
        after.hr_at(10) > before.hr_at(10) + 0.02,
        "training moved HR@10 only {} -> {}",
        before.hr_at(10),
        after.hr_at(10)
    );

    let pop = Pop::fit(&split);
    let pop_m = evaluate(&pop, &split, EvalTarget::Test, &eval_opts);
    assert!(pop_m.hr_at(20) > 0.0, "popularity baseline should hit sometimes");
}

#[test]
fn cl4srec_two_stage_improves_over_random_init() {
    let dataset = build_dataset(&five_core(&generate_log(&tiny_config())));
    let split = Split::leave_one_out(&dataset);
    let cfg = Cl4sRecConfig { encoder: tiny_encoder(dataset.num_items()), tau: 0.5 };
    let mut model = Cl4sRec::new(cfg, 2);
    let augs = AugmentationSet::new(vec![
        Box::new(Crop { eta: 0.6 }),
        Box::new(Mask { gamma: 0.5, mask_token: model.mask_token() }),
        Box::new(Reorder { beta: 0.5 }),
    ]);
    let before = evaluate(&model, &split, EvalTarget::Test, &EvalOptions::default());
    let (pre, fine) = model.fit(
        &split,
        &augs,
        &PretrainOptions { epochs: 3, batch_size: 64, patience: None, ..Default::default() },
        &TrainOptions {
            epochs: 5,
            batch_size: 64,
            patience: None,
            valid_probe_users: 50,
            ..Default::default()
        },
    );
    assert_eq!(pre.losses.len(), 3);
    assert_eq!(fine.epochs_run(), 5);
    let after = evaluate(&model, &split, EvalTarget::Test, &EvalOptions::default());
    assert!(after.hr_at(10) > before.hr_at(10));
    // contrastive pre-training made progress on its own objective
    assert!(pre.losses.last().unwrap() < pre.losses.first().unwrap());
}

#[test]
fn valid_and_test_evaluations_use_different_targets() {
    let dataset = build_dataset(&five_core(&generate_log(&tiny_config())));
    let split = Split::leave_one_out(&dataset);
    let model = SasRec::new(tiny_encoder(dataset.num_items()), 3);
    let v = evaluate(&model, &split, EvalTarget::Valid, &EvalOptions::default());
    let t = evaluate(&model, &split, EvalTarget::Test, &EvalOptions::default());
    assert_eq!(v.users, t.users);
    // untrained metrics on different target sets almost surely differ
    assert_ne!(v.mrr.to_bits(), t.mrr.to_bits());
}
