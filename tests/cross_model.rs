//! Cross-model contract tests: every Table 2 method satisfies the
//! [`SequenceScorer`] contract on the same dataset.

use cp4rec_repro::cl4srec::model::{Cl4sRec, Cl4sRecConfig};
use cp4rec_repro::data::synthetic::{generate_dataset, SyntheticConfig};
use cp4rec_repro::data::Split;
use cp4rec_repro::eval::SequenceScorer;
use cp4rec_repro::models::{
    Bert4Rec, Bert4RecConfig, BprMf, BprMfConfig, Caser, CaserConfig, EncoderConfig, Fpmc,
    FpmcConfig, Gru4Rec, Gru4RecConfig, Ncf, NcfConfig, Pop, SasRec,
};

fn setup() -> (Split, usize) {
    let mut cfg = SyntheticConfig::beauty(0.01);
    cfg.num_users = 250;
    let dataset = generate_dataset(&cfg);
    let split = Split::leave_one_out(&dataset);
    let n = dataset.num_items();
    (split, n)
}

fn check_contract(model: &dyn SequenceScorer, split: &Split, num_items: usize) {
    assert_eq!(model.num_items(), num_items);
    let users = [0usize, 1, split.num_users() - 1];
    let inputs: Vec<Vec<u32>> = users.iter().map(|&u| split.test_input(u)).collect();
    let refs: Vec<&[u32]> = inputs.iter().map(Vec::as_slice).collect();
    let scores = model.score_full_catalog(&users, &refs);
    assert_eq!(scores.len(), users.len());
    for row in &scores {
        assert_eq!(row.len(), num_items + 1, "must cover ids 0..=num_items");
        assert!(row.iter().all(|s| s.is_finite()), "scores must be finite");
    }
    // determinism
    let again = model.score_full_catalog(&users, &refs);
    assert_eq!(scores, again, "scoring must be deterministic");
}

#[test]
fn every_method_satisfies_the_scorer_contract() {
    let (split, n) = setup();
    let enc = EncoderConfig { num_items: n, d: 16, heads: 2, layers: 1, max_len: 10, dropout: 0.1 };

    check_contract(&Pop::fit(&split), &split, n);
    check_contract(
        &BprMf::new(BprMfConfig { d: 16, ..Default::default() }, split.num_users(), n, 1),
        &split,
        n,
    );
    check_contract(&Ncf::new(NcfConfig { d: 16 }, split.num_users(), n, 2), &split, n);
    check_contract(
        &Gru4Rec::new(Gru4RecConfig { num_items: n, d: 16, max_len: 10, dropout: 0.1 }, 3),
        &split,
        n,
    );
    check_contract(&SasRec::new(enc.clone(), 4), &split, n);
    check_contract(&Cl4sRec::new(Cl4sRecConfig { encoder: enc.clone(), tau: 0.5 }, 5), &split, n);
    check_contract(
        &Fpmc::new(FpmcConfig { d: 16, ..Default::default() }, split.num_users(), n, 6),
        &split,
        n,
    );
    check_contract(
        &Caser::new(
            CaserConfig {
                num_items: n,
                d: 16,
                window: 4,
                heights: vec![2, 3],
                n_h: 4,
                n_v: 2,
                dropout: 0.1,
            },
            split.num_users(),
            7,
        ),
        &split,
        n,
    );
    check_contract(&Bert4Rec::new(Bert4RecConfig { encoder: enc, mask_prob: 0.3 }, 8), &split, n);
}

#[test]
fn sasrec_bpr_warm_start_changes_scores() {
    let (split, n) = setup();
    let enc = EncoderConfig { num_items: n, d: 16, heads: 2, layers: 1, max_len: 10, dropout: 0.1 };
    let cold = SasRec::new(enc.clone(), 7);
    let mut warm = SasRec::new(enc, 7);
    let bpr = BprMf::new(BprMfConfig { d: 16, ..Default::default() }, split.num_users(), n, 8);
    warm.warm_start_items(bpr.item_factors());

    let input = split.test_input(0);
    let a = cold.score_full_catalog(&[0], &[&input]);
    let b = warm.score_full_catalog(&[0], &[&input]);
    assert_ne!(a, b, "warm start must change the scoring function");
}

#[test]
fn sequence_models_react_to_history_and_mf_models_do_not() {
    let (split, n) = setup();
    let enc = EncoderConfig { num_items: n, d: 16, heads: 2, layers: 1, max_len: 10, dropout: 0.1 };
    let sasrec = SasRec::new(enc, 1);
    let h1: Vec<u32> = vec![1, 2, 3];
    let h2: Vec<u32> = vec![4, 5, 6];
    assert_ne!(
        sasrec.score_full_catalog(&[0], &[&h1]),
        sasrec.score_full_catalog(&[0], &[&h2]),
        "SASRec must be history-sensitive"
    );
    let bpr = BprMf::new(BprMfConfig { d: 16, ..Default::default() }, split.num_users(), n, 1);
    assert_eq!(
        bpr.score_full_catalog(&[0], &[&h1]),
        bpr.score_full_catalog(&[0], &[&h2]),
        "BPR-MF must be history-insensitive"
    );
}
