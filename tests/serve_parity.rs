//! Serve-vs-eval parity: the serving path must be **bit-exact** against
//! the offline evaluator for every model in the zoo — through the
//! checkpoint round trip, through the user-state cache, through
//! micro-batching, and through the SIMD top-K kernel.

use cp4rec_repro::cl4srec::model::{Cl4sRec, Cl4sRecConfig};
use cp4rec_repro::data::synthetic::{generate_dataset, SyntheticConfig};
use cp4rec_repro::data::Split;
use cp4rec_repro::eval::SequenceScorer;
use cp4rec_repro::models::checkpoint::save_to_vec;
use cp4rec_repro::models::{
    Bert4Rec, Bert4RecConfig, BprMf, BprMfConfig, Caser, CaserConfig, EncoderConfig, Fpmc,
    FpmcConfig, Gru4Rec, Gru4RecConfig, Ncf, NcfConfig, Pop, SasRec,
};
use cp4rec_repro::tensor::topk::top_k;
use proptest::prelude::*;
use seqrec_serve::{AnyModel, BatchingServer, Recommendation, ScoringService, ServerConfig};

fn setup() -> (Split, usize) {
    let mut cfg = SyntheticConfig::beauty(0.01);
    cfg.num_users = 120;
    let dataset = generate_dataset(&cfg);
    let n = dataset.num_items();
    (Split::leave_one_out(&dataset), n)
}

/// Every model, trained-or-not, round-tripped through its checkpoint and
/// loaded behind [`AnyModel`] — exactly what a serving process holds.
fn zoo(split: &Split, n: usize) -> Vec<AnyModel> {
    let users = split.num_users();
    let enc = EncoderConfig { num_items: n, d: 16, heads: 2, layers: 1, max_len: 10, dropout: 0.1 };
    let caser = CaserConfig {
        num_items: n,
        d: 16,
        window: 4,
        heights: vec![2, 3],
        n_h: 4,
        n_v: 2,
        dropout: 0.1,
    };
    [
        save_to_vec(&Pop::fit(split)),
        save_to_vec(&BprMf::new(BprMfConfig { d: 16, ..Default::default() }, users, n, 1)),
        save_to_vec(&Ncf::new(NcfConfig { d: 16 }, users, n, 2)),
        save_to_vec(&Fpmc::new(FpmcConfig { d: 16, ..Default::default() }, users, n, 3)),
        save_to_vec(&Caser::new(caser, users, 4)),
        save_to_vec(&Gru4Rec::new(
            Gru4RecConfig { num_items: n, d: 16, max_len: 10, dropout: 0.1 },
            5,
        )),
        save_to_vec(&Bert4Rec::new(Bert4RecConfig { encoder: enc.clone(), mask_prob: 0.3 }, 6)),
        save_to_vec(&SasRec::new(enc.clone(), 7)),
        save_to_vec(&Cl4sRec::new(Cl4sRecConfig { encoder: enc, tau: 0.5 }, 8)),
    ]
    .into_iter()
    .map(|bytes| AnyModel::load_from_bytes(&bytes).expect("zoo checkpoint loads"))
    .collect()
}

fn bit_eq(a: &[Vec<f32>], b: &[Vec<f32>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.len() == y.len() && x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits())
        })
}

/// Reference top-K: full argsort by (score desc, index asc) — the ranking
/// the SIMD kernel must reproduce exactly.
fn brute_force_top_k(scores: &[f32], k: usize) -> Vec<(u32, f32)> {
    let mut ranked: Vec<(u32, f32)> =
        scores.iter().enumerate().map(|(i, &s)| (i as u32, s)).collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked.truncate(k);
    ranked
}

#[test]
fn serve_scores_match_eval_bit_exactly_for_every_model() {
    let (split, n) = setup();
    for model in zoo(&split, n) {
        let kind = model.kind();
        let users: Vec<usize> = vec![0, 1, 2, 5, split.num_users() - 1, 2];
        let inputs: Vec<Vec<u32>> = users.iter().map(|&u| split.test_input(u)).collect();
        let refs: Vec<&[u32]> = inputs.iter().map(Vec::as_slice).collect();
        let eval_scores = model.score_full_catalog(&users, &refs);

        let mut service = ScoringService::new(model);
        // Cold pass: every request misses the cache.
        let cold = service.score_batch(&users, &refs);
        assert!(bit_eq(&cold, &eval_scores), "{kind}: cold serve path diverged from eval");
        // Warm pass: every request hits; cached states must reproduce the
        // same bits.
        let warm = service.score_batch(&users, &refs);
        assert!(bit_eq(&warm, &eval_scores), "{kind}: cached serve path diverged from eval");
        // Batch-composition invariance: each request served alone returns
        // the identical row it got inside the batch.
        for (i, (&u, &h)) in users.iter().zip(&refs).enumerate() {
            service.invalidate_user(u);
            let solo = service.score_batch(&[u], &[h]);
            assert!(
                bit_eq(&solo, &eval_scores[i..i + 1]),
                "{kind}: request {i} scored differently alone vs in the batch"
            );
        }
    }
}

#[test]
fn served_top_k_matches_brute_force_for_every_model() {
    let (split, n) = setup();
    for model in zoo(&split, n) {
        let kind = model.kind();
        let users = [0usize, 3, 7];
        let inputs: Vec<Vec<u32>> = users.iter().map(|&u| split.test_input(u)).collect();
        let refs: Vec<&[u32]> = inputs.iter().map(Vec::as_slice).collect();
        let eval_scores = model.score_full_catalog(&users, &refs);
        let mut service = ScoringService::new(model);
        // K = 1, the catalog, and beyond the catalog.
        for k in [1usize, n, n + 1] {
            let served = service.recommend(&users, &refs, k);
            for (row, scores) in served.iter().zip(&eval_scores) {
                // The pad id 0 is excluded: brute-force over items 1..=n.
                let want: Vec<(u32, f32)> = brute_force_top_k(&scores[1..], k)
                    .into_iter()
                    .map(|(i, s)| (i + 1, s))
                    .collect();
                let got: Vec<(u32, f32)> = row.iter().map(|r| (r.item, r.score)).collect();
                assert_eq!(got.len(), k.min(n), "{kind}: wrong top-K length at k={k}");
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.0, w.0, "{kind}: top-K item order diverged at k={k}");
                    assert_eq!(
                        g.1.to_bits(),
                        w.1.to_bits(),
                        "{kind}: top-K score diverged at k={k}"
                    );
                }
            }
        }
    }
}

#[test]
fn batching_server_matches_direct_eval() {
    let (split, n) = setup();
    let model = AnyModel::load_from_bytes(&save_to_vec(&SasRec::new(
        EncoderConfig { num_items: n, d: 16, heads: 2, layers: 1, max_len: 10, dropout: 0.1 },
        7,
    )))
    .expect("loads");

    // Expected rankings straight from the evaluator path.
    let k = 10;
    let users: Vec<usize> = (0..split.num_users()).collect();
    let inputs: Vec<Vec<u32>> = users.iter().map(|&u| split.test_input(u)).collect();
    let refs: Vec<&[u32]> = inputs.iter().map(Vec::as_slice).collect();
    let expected: Vec<Vec<Recommendation>> = model
        .score_full_catalog(&users, &refs)
        .iter()
        .map(|row| {
            brute_force_top_k(&row[1..], k)
                .into_iter()
                .map(|(i, s)| Recommendation { item: i + 1, score: s })
                .collect()
        })
        .collect();

    // Hammer the server from several threads so requests genuinely coalesce
    // into mixed batches; every response must equal the offline ranking.
    let server =
        BatchingServer::spawn(model, ServerConfig { max_batch: 8, ..ServerConfig::default() });
    std::thread::scope(|scope| {
        for t in 0..4 {
            let client = server.client();
            let (users, refs, expected) = (&users, &refs, &expected);
            scope.spawn(move || {
                for (i, &u) in users.iter().enumerate() {
                    if i % 4 != t {
                        continue;
                    }
                    let got = client.recommend(u, refs[i], k).expect("server alive");
                    assert_eq!(got, expected[i], "user {u}: served ranking != eval ranking");
                }
            });
        }
    });
}

proptest! {
    /// The SIMD top-K kernel reproduces a full argsort on adversarial
    /// inputs: heavy ties, duplicates, and negatives (scores quantised to
    /// a handful of values so most positions collide).
    #[test]
    fn top_k_kernel_matches_argsort(
        raw in proptest::collection::vec(-4i32..=4, 1usize..80),
        k_sel in 0usize..4,
    ) {
        let scores: Vec<f32> = raw.iter().map(|&v| v as f32 * 0.5).collect();
        // K ∈ {1, len/2, len (the catalog), len+1 (beyond it)}.
        let k = [1, scores.len() / 2, scores.len(), scores.len() + 1][k_sel];
        let got = top_k(&scores, k);
        let want = brute_force_top_k(&scores, k);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.index, w.0);
            prop_assert_eq!(g.score.to_bits(), w.1.to_bits());
        }
    }
}
