//! Anomaly-sentinel and run-ledger integration guards.
//!
//! 1. **Injection, warn vs abort**: feeding a `FitSession` a NaN loss or a
//!    non-finite gradient group must raise the anomaly exactly once under
//!    `Warn` (training continues) and request an abort under `Abort`.
//! 2. **Destabilised run**: a SASRec fit at an absurd learning rate goes
//!    non-finite within an epoch; under `Abort` the fit stops early AND
//!    still leaves a complete run ledger behind whose report.json names the
//!    first anomalous step and parameter group.

use seqrec_data::{Dataset, Split};
use seqrec_models::common::{AnomalyPolicy, FitSession, TrainOptions};
use seqrec_models::{EncoderConfig, SasRec};
use seqrec_obs::json::{self, Value};
use seqrec_tensor::dynamics::{GroupStat, OptimStepStats};

fn finite_stats(step: u64) -> OptimStepStats {
    OptimStepStats {
        step,
        lr: 1e-3,
        clip_scale: 1.0,
        groups: vec![GroupStat {
            group: "encoder.layer0".into(),
            params: 4,
            grad_sq: 0.25,
            update_sq: 1e-8,
            param_sq: 4.0,
        }],
    }
}

fn nan_grad_stats(step: u64) -> OptimStepStats {
    let mut s = finite_stats(step);
    s.groups[0].grad_sq = f64::NAN;
    s
}

#[test]
fn warn_policy_flags_nan_loss_but_keeps_training() {
    let opts =
        TrainOptions { on_anomaly: AnomalyPolicy::Warn, run_dir: None, ..Default::default() };
    let mut session = FitSession::start("test-model", "{}", &opts);
    assert!(!session.observe_step(0, 1.0, &finite_stats(1)), "clean step must not abort");
    assert!(!session.observe_step(0, f32::NAN, &finite_stats(2)), "warn policy must not abort");
    assert!(!session.observe_step(0, 0.9, &finite_stats(3)));
    let report = session.anomaly().expect("NaN loss must be recorded");
    assert_eq!(report.step, 2);
    assert_eq!(report.kind, "loss");
    assert_eq!(session.anomalous_steps(), 1);
}

#[test]
fn abort_policy_requests_stop_on_nonfinite_gradient() {
    let opts =
        TrainOptions { on_anomaly: AnomalyPolicy::Abort, run_dir: None, ..Default::default() };
    let mut session = FitSession::start("test-model", "{}", &opts);
    assert!(!session.observe_step(0, 1.0, &finite_stats(1)));
    assert!(session.observe_step(0, 1.0, &nan_grad_stats(2)), "abort policy must request stop");
    let report = session.anomaly().expect("gradient anomaly must be recorded");
    assert_eq!(report.step, 2);
    assert_eq!(report.kind, "gradient");
    assert_eq!(report.group, "encoder.layer0");
}

#[test]
fn infinite_loss_is_flagged_like_nan() {
    let opts =
        TrainOptions { on_anomaly: AnomalyPolicy::Abort, run_dir: None, ..Default::default() };
    let mut session = FitSession::start("test-model", "{}", &opts);
    assert!(session.observe_step(0, f32::INFINITY, &finite_stats(1)));
    assert_eq!(session.anomaly().map(|a| a.kind.as_str()), Some("loss"));
}

fn toy_dataset() -> Dataset {
    let seqs = (0..24).map(|u| (0..8).map(|i| ((u + i) % 12) as u32 + 1).collect()).collect();
    Dataset::new(seqs, 12)
}

fn read_json(path: &std::path::Path) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("missing ledger file {}: {e}", path.display()));
    json::parse(&text).unwrap_or_else(|e| panic!("invalid JSON in {}: {e}", path.display()))
}

#[test]
fn destabilised_fit_aborts_and_writes_a_complete_ledger() {
    let dir = std::env::temp_dir().join(format!("anomaly_ledger_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Let NaN/Inf reach the sentinels as in a release build instead of
    // tripping the debug-only tape assertion at the first bad op.
    seqrec_tensor::set_finite_tripwire(false);

    let split = Split::leave_one_out(&toy_dataset());
    let cfg = EncoderConfig { num_items: 12, d: 16, heads: 2, layers: 1, max_len: 8, dropout: 0.1 };
    let mut model = SasRec::new(cfg, 7);
    let opts = TrainOptions {
        epochs: 6,
        batch_size: 8,
        lr: 1e20, // deliberately destabilising: activations overflow within an epoch
        patience: None,
        probe_every: 0,
        on_anomaly: AnomalyPolicy::Abort,
        run_dir: Some(dir.display().to_string()),
        ..Default::default()
    };
    let report = model.fit(&split, &opts);
    seqrec_tensor::set_finite_tripwire(true);

    let anomaly = report.anomaly.as_ref().expect("lr=1e20 must trip the sentinels");
    assert!(anomaly.step >= 1);
    assert!(
        matches!(anomaly.kind.as_str(), "loss" | "gradient" | "update" | "parameter"),
        "unexpected anomaly kind {:?}",
        anomaly.kind
    );
    assert!(report.anomalous_steps >= 1);
    assert!(
        report.epochs_run() < opts.epochs,
        "abort policy must cut training short (ran {} epochs)",
        report.epochs_run()
    );

    // The aborted run still leaves a complete ledger behind.
    for name in ["config.json", "env.json", "metrics.jsonl", "dynamics.jsonl", "report.json"] {
        assert!(dir.join(name).exists(), "aborted run missing ledger file {name}");
    }
    let written = read_json(&dir.join("report.json"));
    let recorded = written.get("anomaly").expect("report.json must carry the anomaly");
    assert_eq!(
        recorded.get("step").and_then(Value::as_f64),
        Some(anomaly.step as f64),
        "report.json names a different anomalous step"
    );
    assert_eq!(
        recorded.get("kind").and_then(Value::as_str),
        Some(anomaly.kind.as_str()),
        "report.json names a different anomaly kind"
    );
    assert_eq!(recorded.get("group").and_then(Value::as_str), Some(anomaly.group.as_str()));
    let config = read_json(&dir.join("config.json"));
    assert_eq!(config.get("model").and_then(Value::as_str), Some("SASRec"));

    // dynamics.jsonl covers every step up to and including the anomalous one.
    let dynamics = std::fs::read_to_string(dir.join("dynamics.jsonl")).unwrap();
    let steps: Vec<f64> = dynamics
        .lines()
        .map(|l| json::parse(l).unwrap().get("step").and_then(Value::as_f64).unwrap())
        .collect();
    assert_eq!(steps.len() as f64, *steps.last().unwrap(), "dynamics steps must be contiguous");
    assert!(*steps.last().unwrap() >= anomaly.step as f64);

    let _ = std::fs::remove_dir_all(&dir);
}
