//! End-to-end observability of the serving path: request lifecycle traces
//! reconstruct real requests, and a live TCP scrape mid-serve returns a
//! well-formed, self-consistent snapshot.
//!
//! The sink is process-global; every test that installs one serialises on
//! `SINK_LOCK`.

use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;

use cp4rec_repro::data::synthetic::{generate_dataset, SyntheticConfig};
use cp4rec_repro::data::Split;
use cp4rec_repro::models::{EncoderConfig, SasRec};
use seqrec_obs::profile::{parse_auto, parse_requests_auto, RequestProfile};
use seqrec_obs::sink::{self, SharedBuf};
use seqrec_obs::{metrics, JsonlSink};
use seqrec_serve::{expo, slo, BatchingServer, ExpoServer, ServerConfig, SloPolicy};

static SINK_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    SINK_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn setup() -> (Split, usize) {
    let mut cfg = SyntheticConfig::beauty(0.01);
    cfg.num_users = 60;
    let dataset = generate_dataset(&cfg);
    let n = dataset.num_items();
    (Split::leave_one_out(&dataset), n)
}

fn spawn_server(n: usize) -> BatchingServer {
    let enc = EncoderConfig { num_items: n, d: 16, heads: 2, layers: 1, max_len: 10, dropout: 0.1 };
    BatchingServer::spawn(SasRec::new(enc, 7), ServerConfig::default())
}

const STAGES: [&str; 6] = ["enqueue", "batch", "encode", "score", "topk", "reply"];

/// Every served request leaves a six-stage trace whose stages tile its
/// server-side latency exactly (consecutive stages share a boundary
/// timestamp), and the traced total agrees with what the client measured.
#[test]
fn request_traces_reconstruct_client_observed_latency() {
    let _g = lock();
    let (split, n) = setup();
    let server = spawn_server(n);

    let buf = SharedBuf::new();
    sink::install(Arc::new(JsonlSink::to_writer(Box::new(buf.clone()))));
    let client = server.client();
    let mut client_us: Vec<f64> = Vec::new();
    for user in 0..20 {
        let sent = Instant::now();
        let recs = client.recommend(user, split.train_sequence(user), 5).expect("server alive");
        client_us.push(sent.elapsed().as_secs_f64() * 1e6);
        assert!(!recs.is_empty());
    }
    // The client handle holds a sender clone: drop it first or the worker
    // never sees the channel close and the server join blocks forever.
    drop(client);
    drop(server);
    sink::uninstall();
    let text = buf.contents();

    let events = parse_requests_auto(&text).expect("request events parse");
    assert_eq!(events.len(), 20 * STAGES.len(), "six stages per request");

    // Group by request id and check each trace tiles exactly.
    let mut ids: Vec<u64> = events.iter().map(|e| e.req).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 20, "one trace per request");
    let mut totals: Vec<u64> = Vec::new();
    for id in ids {
        let trace: Vec<_> = events.iter().filter(|e| e.req == id).collect();
        let got: Vec<&str> = trace.iter().map(|e| e.stage.as_str()).collect();
        assert_eq!(got, STAGES, "stage order for request {id}");
        for pair in trace.windows(2) {
            assert_eq!(
                pair[0].ts_us + pair[0].dur_us,
                pair[1].ts_us,
                "stages must share boundary timestamps (request {id})"
            );
        }
        let span = trace.last().unwrap().ts_us + trace.last().unwrap().dur_us - trace[0].ts_us;
        let sum: u64 = trace.iter().map(|e| e.dur_us).sum();
        assert_eq!(sum, span, "stage durations must telescope (request {id})");
        totals.push(sum);
    }

    // The traced total starts at the client's enqueue stamp and ends just
    // after the reply was sent, so it can only disagree with the client's
    // own stopwatch by scheduling noise — bounded, generously, by 100ms.
    for (total, observed) in totals.iter().zip(&client_us) {
        let diff = (*total as f64 - observed).abs();
        assert!(
            diff < 100_000.0,
            "traced {total}µs vs client-observed {observed:.0}µs: drift {diff:.0}µs"
        );
    }

    // The same trace still folds as a span stream (request events are
    // transparent to the span parsers) and as a per-stage profile.
    assert!(parse_auto(&text).expect("span parse").is_empty());
    let profile = RequestProfile::build(&events);
    assert_eq!(profile.requests(), 20);
    assert_eq!(profile.stages().len(), STAGES.len());
    let rendered = profile.render();
    for stage in STAGES {
        assert!(rendered.contains(stage), "profile table missing {stage}:\n{rendered}");
    }
}

/// Scraping the exposition endpoint while the server is under load
/// returns a parseable, internally consistent snapshot whose rolling
/// windows are populated, and the SLO evaluator agrees with it.
#[test]
fn live_scrape_mid_serve_is_well_formed_and_current() {
    let _g = lock();
    let (split, n) = setup();
    metrics::reset_all();
    metrics::SERVE_LATENCY_US_WINDOW.reset();
    metrics::SERVE_QUEUE_DEPTH_WINDOW.reset();
    let server = spawn_server(n);
    let expo_server = ExpoServer::bind("127.0.0.1:0").expect("bind loopback");

    let client = server.client();
    for user in 0..30 {
        let _ = client.recommend(
            user % split.num_users(),
            split.train_sequence(user % split.num_users()),
            5,
        );
    }
    // Scrape while the server is still up: this is the live path, not the
    // shutdown dump.
    let body = expo::scrape(expo_server.addr()).expect("scrape over TCP");
    let exp = seqrec_obs::expo::parse(&body).expect("exposition parses");
    exp.validate_histograms().expect("histograms well-formed");
    assert_eq!(exp.value("seqrec_serve_requests"), Some(30.0));
    assert!(
        exp.value("seqrec_serve_latency_us_window_count").unwrap_or(0.0) >= 30.0,
        "rolling latency window must hold the traffic just served"
    );
    assert!(exp.value("seqrec_serve_queue_depth_window_count").unwrap_or(0.0) >= 1.0);
    assert!(exp.value("seqrec_serve_cache_hits_window").is_some());
    assert!(exp.value("seqrec_obs_window_us").unwrap_or(0.0) > 0.0);

    // The SLO evaluator reads the same window the scrape rendered.
    let report = slo::evaluate(&SloPolicy { target_us: 5_000_000, budget: 0.0, error_budget: 0.0 });
    assert_eq!(report.total, 30);
    assert!(report.ok, "30 sub-5s requests cannot breach: {report:?}");

    drop(client);
    drop(server);
    drop(expo_server);
    metrics::reset_all();
}
