//! Golden training-step fixtures (tier-1 trajectory pinning).
//!
//! Each scenario in `seqrec_conformance::golden` seeds everything — init,
//! negative sampling, dropout, augmentations — runs six Adam steps on a
//! fixed 4-user batch, and records every step loss as raw f32 bits plus an
//! FNV-1a digest of every final parameter. These tests assert the recorded
//! trajectory matches the fixtures committed under `tests/golden/`
//! **bit-for-bit**, and that two consecutive in-process runs agree, so any
//! engine, RNG, or optimizer change that alters training is caught here
//! rather than showing up later as silent HR/NDCG drift.
//!
//! To regenerate after an *intentional* numerical change:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test golden_training
//! ```
//!
//! then review the fixture diff like any other code change (see TESTING.md).

use seqrec_conformance::golden::{run_cl4srec_golden, run_sasrec_golden, GoldenRecord};
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

/// Explains the first divergence between two records in human terms.
fn explain_diff(got: &GoldenRecord, want: &GoldenRecord) -> String {
    for (i, (g, w)) in got.losses.iter().zip(&want.losses).enumerate() {
        if g != w {
            return format!(
                "first divergence at step {i}: loss {} (bits {g:08x}) vs fixture {} (bits {w:08x})",
                f32::from_bits(*g),
                f32::from_bits(*w)
            );
        }
    }
    if got.losses.len() != want.losses.len() {
        return format!(
            "step count changed: {} vs fixture {}",
            got.losses.len(),
            want.losses.len()
        );
    }
    for (g, w) in got.params.iter().zip(&want.params) {
        if g != w {
            return format!(
                "losses match but parameter {:?} digest {:016x} vs fixture {:?} {:016x}",
                g.0, g.1, w.0, w.1
            );
        }
    }
    format!("parameter count changed: {} vs fixture {}", got.params.len(), want.params.len())
}

fn check_golden(name: &str, run: impl Fn() -> GoldenRecord) {
    let rec = run();
    let again = run();
    assert_eq!(
        rec,
        again,
        "{name}: two consecutive in-process runs disagree — \
         the training path is nondeterministic ({})",
        explain_diff(&again, &rec)
    );

    let path = fixture_path(name);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::write(&path, rec.to_text())
            .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
        eprintln!("regenerated {}", path.display());
        return;
    }
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {} ({e}); generate it with \
             `GOLDEN_REGEN=1 cargo test --test golden_training`",
            path.display()
        )
    });
    let want = GoldenRecord::from_text(&text)
        .unwrap_or_else(|e| panic!("corrupt fixture {}: {e}", path.display()));
    assert_eq!(
        rec,
        want,
        "{name}: training trajectory drifted from the committed fixture. {}\n\
         If the change is intentional, regenerate with \
         `GOLDEN_REGEN=1 cargo test --test golden_training` and review the diff.",
        explain_diff(&rec, &want)
    );
}

/// SASRec: six Adam steps of the next-item BCE loss (Eq. 15), dropout 0.1 —
/// pins init, the forward/backward engine, Adam, and the dropout RNG stream.
#[test]
fn golden_sasrec_trajectory() {
    check_golden("sasrec.golden", run_sasrec_golden);
}

/// CL4SRec: six Adam steps of the joint objective (Eq. 16, λ = 0.1) — pins
/// everything the SASRec scenario does plus the crop/mask/reorder
/// augmentation stream and the NT-Xent branch.
#[test]
fn golden_cl4srec_trajectory() {
    check_golden("cl4srec.golden", run_cl4srec_golden);
}
