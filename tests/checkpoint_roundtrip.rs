//! Checkpoint format contract, for every model in the zoo:
//!
//! * save → load → save is **byte-identical** (the format is a pure
//!   function of the weights, with no ambient state leaking in);
//! * the loaded model's forward pass is **bit-exact** against the
//!   original on a fixed batch;
//! * corrupted, truncated, or version-bumped files are rejected with a
//!   [`CheckpointError`] diagnostic — never a panic, never a silent load.

use cp4rec_repro::cl4srec::model::{Cl4sRec, Cl4sRecConfig};
use cp4rec_repro::data::synthetic::{generate_dataset, SyntheticConfig};
use cp4rec_repro::data::Split;
use cp4rec_repro::eval::SequenceScorer;
use cp4rec_repro::models::checkpoint::{load_from_bytes, save_to_vec, CheckpointError};
use cp4rec_repro::models::{
    Bert4Rec, Bert4RecConfig, BprMf, BprMfConfig, Caser, CaserConfig, Checkpointable,
    EncoderConfig, Fpmc, FpmcConfig, Gru4Rec, Gru4RecConfig, Ncf, NcfConfig, Pop, SasRec,
};
use proptest::prelude::*;

fn setup() -> (Split, usize) {
    let mut cfg = SyntheticConfig::beauty(0.01);
    cfg.num_users = 120;
    let dataset = generate_dataset(&cfg);
    let n = dataset.num_items();
    (Split::leave_one_out(&dataset), n)
}

fn enc(n: usize) -> EncoderConfig {
    EncoderConfig { num_items: n, d: 16, heads: 2, layers: 1, max_len: 10, dropout: 0.1 }
}

/// save → load → save byte-identical, and the loaded forward bit-exact.
fn check_roundtrip<M: Checkpointable + SequenceScorer>(model: &M, split: &Split) {
    let bytes = save_to_vec(model);
    let loaded: M = match load_from_bytes(&bytes) {
        Ok(m) => m,
        Err(e) => panic!("{} checkpoint failed to load: {e}", M::KIND),
    };
    assert_eq!(
        save_to_vec(&loaded),
        bytes,
        "{}: resaving a loaded checkpoint must be byte-identical",
        M::KIND
    );
    let users = [0usize, 1, split.num_users() - 1];
    let inputs: Vec<Vec<u32>> = users.iter().map(|&u| split.test_input(u)).collect();
    let refs: Vec<&[u32]> = inputs.iter().map(Vec::as_slice).collect();
    let original = model.score_full_catalog(&users, &refs);
    let reloaded = loaded.score_full_catalog(&users, &refs);
    for (a, b) in original.iter().zip(&reloaded) {
        let same = a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(same, "{}: loaded model's forward is not bit-exact", M::KIND);
    }
}

#[test]
fn every_model_roundtrips_bit_exactly() {
    let (split, n) = setup();
    let users = split.num_users();
    check_roundtrip(&Pop::fit(&split), &split);
    check_roundtrip(&BprMf::new(BprMfConfig { d: 16, ..Default::default() }, users, n, 1), &split);
    check_roundtrip(&Ncf::new(NcfConfig { d: 16 }, users, n, 2), &split);
    check_roundtrip(&Fpmc::new(FpmcConfig { d: 16, ..Default::default() }, users, n, 3), &split);
    check_roundtrip(
        &Caser::new(
            CaserConfig {
                num_items: n,
                d: 16,
                window: 4,
                heights: vec![2, 3],
                n_h: 4,
                n_v: 2,
                dropout: 0.1,
            },
            users,
            4,
        ),
        &split,
    );
    check_roundtrip(
        &Gru4Rec::new(Gru4RecConfig { num_items: n, d: 16, max_len: 10, dropout: 0.1 }, 5),
        &split,
    );
    check_roundtrip(&Bert4Rec::new(Bert4RecConfig { encoder: enc(n), mask_prob: 0.3 }, 6), &split);
    check_roundtrip(&SasRec::new(enc(n), 7), &split);
    check_roundtrip(&Cl4sRec::new(Cl4sRecConfig { encoder: enc(n), tau: 0.5 }, 8), &split);
}

#[test]
fn kind_and_version_mismatches_are_diagnosed() {
    let (split, n) = setup();
    let bytes = save_to_vec(&SasRec::new(enc(n), 7));
    match load_from_bytes::<Gru4Rec>(&bytes) {
        Err(CheckpointError::Kind { expected, found }) => {
            assert_eq!((expected, found.as_str()), ("gru4rec", "sasrec"));
        }
        Err(e) => panic!("wrong error for a kind mismatch: {e}"),
        Ok(_) => panic!("a sasrec checkpoint must not load as gru4rec"),
    }
    let mut bumped = bytes.clone();
    bumped[4..8].copy_from_slice(&9u32.to_le_bytes());
    match load_from_bytes::<SasRec>(&bumped) {
        Err(CheckpointError::Version { found: 9 }) => {}
        Err(e) => panic!("wrong error for a version bump: {e}"),
        Ok(_) => panic!("a future format version must not load"),
    }
    let _ = split;
}

fn small_checkpoint() -> Vec<u8> {
    let cfg = EncoderConfig { num_items: 9, d: 8, heads: 2, layers: 1, max_len: 6, dropout: 0.1 };
    save_to_vec(&SasRec::new(cfg, 11))
}

proptest! {
    /// Every strict prefix of a checkpoint is rejected with an error —
    /// truncation can never panic or load.
    #[test]
    fn truncation_is_always_rejected(cut in 0usize..4096) {
        let bytes = small_checkpoint();
        let cut = cut % bytes.len();
        match load_from_bytes::<SasRec>(&bytes[..cut]) {
            Err(_) => {}
            Ok(_) => prop_assert!(false, "truncated checkpoint loaded at {cut}/{}", bytes.len()),
        }
    }

    /// Flipping any byte of the header or the weight data is rejected with
    /// an error (digest or format check); flips inside the JSON manifest
    /// must at worst error — nothing may panic.
    #[test]
    fn corruption_never_panics(offset in 0usize..65536, mask in 1u8..=255) {
        let mut bytes = small_checkpoint();
        let manifest_len =
            u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
        let offset = offset % bytes.len();
        bytes[offset] ^= mask;
        let result = load_from_bytes::<SasRec>(&bytes);
        if offset < 16 || offset >= 16 + manifest_len {
            // Header and data corruption is always caught: magic/version
            // checks up front, per-tensor digests behind the manifest.
            prop_assert!(result.is_err(), "corrupt byte {offset} loaded silently");
        }
        // Manifest corruption may legitimately parse (e.g. a flipped digit
        // inside a hyper-parameter) — reaching here without a panic is the
        // property under test.
    }
}
