//! User-state cache correctness: a cached encoder state is only ever used
//! for the exact history that produced it, and the end-to-end serving
//! stack actually surfaces what the model learned.

use cp4rec_repro::data::synthetic::{generate_dataset, SyntheticConfig};
use cp4rec_repro::data::{Dataset, Split};
use cp4rec_repro::eval::SequenceScorer;
use cp4rec_repro::models::{EncoderConfig, SasRec, TrainOptions};
use seqrec_serve::{BatchingServer, ScoringService, ServerConfig};

fn bit_eq_rows(a: &[Vec<f32>], b: &[Vec<f32>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.len() == y.len() && x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits())
        })
}

/// Appending an interaction must invalidate the cached state: the next
/// request re-encodes and returns exactly what a cache-free evaluator
/// computes for the longer history. A stale state would be detectable —
/// the two histories score differently — so this is a stale-serve test.
#[test]
fn appending_an_interaction_invalidates_the_cached_state() {
    let mut cfg = SyntheticConfig::beauty(0.01);
    cfg.num_users = 60;
    let dataset = generate_dataset(&cfg);
    let split = Split::leave_one_out(&dataset);
    let n = dataset.num_items();
    let model = SasRec::new(
        EncoderConfig { num_items: n, d: 16, heads: 2, layers: 1, max_len: 10, dropout: 0.1 },
        3,
    );

    let history: Vec<u32> = split.test_input(0);
    let mut appended = history.clone();
    appended.push(if history.last() == Some(&1) { 2 } else { 1 });

    // The check only has teeth if the two histories actually score
    // differently (a sequence model must react to its input).
    let eval_old = model.score_full_catalog(&[0], &[&history]);
    let eval_new = model.score_full_catalog(&[0], &[&appended]);
    assert!(!bit_eq_rows(&eval_old, &eval_new), "appending an item must change the scores");

    let mut service = ScoringService::new(model);
    let served_old = service.score_batch(&[0], &[&history]);
    assert!(bit_eq_rows(&served_old, &eval_old));
    assert!(service.cache().get(0, &history).is_some(), "state must be cached after a miss");
    // The digest key makes the cached state unreachable for the new history.
    assert!(
        service.cache().get(0, &appended).is_none(),
        "a cached state must not be visible for a changed history"
    );
    let served_new = service.score_batch(&[0], &[&appended]);
    assert!(
        bit_eq_rows(&served_new, &eval_new),
        "post-append serve must match a cache-free evaluation (stale state served?)"
    );
    // And the old history's state is gone: the cache keeps the latest only.
    assert!(service.cache().get(0, &history).is_none());
    assert!(service.cache().get(0, &appended).is_some());
}

/// Trains SASRec on a tiny dataset with one deterministic pattern until it
/// overfits, then serves it end-to-end — checkpoint-free, straight through
/// the batching server — and expects the memorised next item at rank 1.
#[test]
fn overfit_model_serves_the_memorised_item_at_rank_1() {
    // Every user repeats the cycle 1→2→3→4; leave-one-out puts the valid
    // item right after the training prefix, so serving the training
    // history must rank that item first once the model has overfit.
    let seq: Vec<u32> = vec![1, 2, 3, 4, 1, 2, 3, 4, 1, 2];
    let dataset = Dataset::new(vec![seq; 32], 4);
    let split = Split::leave_one_out(&dataset);
    let n = dataset.num_items();

    let mut model = SasRec::new(
        EncoderConfig { num_items: n, d: 16, heads: 2, layers: 1, max_len: 8, dropout: 0.0 },
        9,
    );
    // Batch 8 over 32 users = 4 optimiser steps/epoch; 20 epochs at a hot
    // learning rate is plenty to memorise a single 4-cycle.
    model.fit(
        &split,
        &TrainOptions {
            epochs: 20,
            batch_size: 8,
            lr: 0.01,
            seed: 9,
            patience: None,
            probe_every: 0,
            ..Default::default()
        },
    );

    let server = BatchingServer::spawn(model, ServerConfig::default());
    let client = server.client();
    for user in 0..split.num_users() {
        let history = split.train_sequence(user).to_vec();
        let target = split.valid_target(user);
        let recs = client.recommend(user, &history, 3).expect("server alive");
        assert_eq!(
            recs[0].item, target,
            "user {user}: overfit target {target} not at rank 1 (got {:?})",
            recs
        );
    }
}
