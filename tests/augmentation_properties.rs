//! Property-based tests on the paper's augmentation operators (Eq. 4-6):
//! structural invariants that must hold for arbitrary sequences and rates.

use cp4rec_repro::cl4srec::augment::{Augmentation, AugmentationSet, Crop, Mask, Reorder};
use cp4rec_repro::tensor::init::rng;
use proptest::prelude::*;

fn arb_seq() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(1u32..500, 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Crop output is a contiguous sub-slice of the input with length
    /// max(1, ⌊η·n⌋).
    #[test]
    fn crop_is_a_contiguous_subslice(seq in arb_seq(), eta in 0.0f64..=1.0, seed in 0u64..500) {
        let mut r = rng(seed);
        let out = Crop { eta }.apply(&seq, &mut r);
        let expected = ((eta * seq.len() as f64).floor() as usize).clamp(1, seq.len());
        prop_assert_eq!(out.len(), expected);
        let found = seq.windows(out.len()).any(|w| w == &out[..]);
        prop_assert!(found, "crop output is not a window of the input");
    }

    /// Mask preserves length and positions; exactly ⌊γ·n⌋ entries become
    /// the mask token (assuming the token is not already in the sequence).
    #[test]
    fn mask_preserves_shape(seq in arb_seq(), gamma in 0.0f64..=1.0, seed in 0u64..500) {
        let token = 10_000u32;
        let mut r = rng(seed);
        let out = Mask { gamma, mask_token: token }.apply(&seq, &mut r);
        prop_assert_eq!(out.len(), seq.len());
        let masked = out.iter().filter(|&&v| v == token).count();
        prop_assert_eq!(masked, (gamma * seq.len() as f64).floor() as usize);
        for (o, s) in out.iter().zip(&seq) {
            prop_assert!(*o == token || o == s);
        }
    }

    /// Reorder is a permutation: same multiset, same length, and items
    /// outside one window of length ⌊β·n⌋ keep their positions.
    #[test]
    fn reorder_is_a_windowed_permutation(seq in arb_seq(), beta in 0.0f64..=1.0, seed in 0u64..500) {
        let mut r = rng(seed);
        let out = Reorder { beta }.apply(&seq, &mut r);
        prop_assert_eq!(out.len(), seq.len());
        let mut a = out.clone();
        let mut b = seq.clone();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b, "reorder changed the multiset");
        let window = (beta * seq.len() as f64).floor() as usize;
        let moved: Vec<usize> = out
            .iter()
            .zip(&seq)
            .enumerate()
            .filter(|(_, (x, y))| x != y)
            .map(|(i, _)| i)
            .collect();
        if let (Some(&first), Some(&last)) = (moved.first(), moved.last()) {
            prop_assert!(last - first < window.max(1), "changes escape the window");
        }
    }

    /// The sampled two views never lose the whole sequence, and the set is
    /// closed over its operators (outputs only contain input items or the
    /// mask token).
    #[test]
    fn two_views_are_wellformed(seq in arb_seq(), seed in 0u64..500) {
        let token = 10_000u32;
        let set = AugmentationSet::paper_full(0.5, 0.5, 0.5, token);
        let mut r = rng(seed);
        let (a, b) = set.two_views(&seq, &mut r);
        for view in [&a, &b] {
            prop_assert!(!view.is_empty());
            for &v in view {
                prop_assert!(v == token || seq.contains(&v));
            }
        }
    }

    /// Augmentations are deterministic given the RNG state.
    #[test]
    fn operators_are_deterministic(seq in arb_seq(), seed in 0u64..500) {
        let ops: Vec<Box<dyn Augmentation>> = vec![
            Box::new(Crop { eta: 0.5 }),
            Box::new(Mask { gamma: 0.5, mask_token: 10_000 }),
            Box::new(Reorder { beta: 0.5 }),
        ];
        for op in &ops {
            let out1 = op.apply(&seq, &mut rng(seed));
            let out2 = op.apply(&seq, &mut rng(seed));
            prop_assert_eq!(out1, out2);
        }
    }

    /// Exact paper element counts on every length and rate: crop keeps
    /// `max(1, ⌊η·n⌋)` items, mask replaces `⌊γ·n⌋`, reorder shuffles a
    /// window of `⌊β·n⌋` (so at most that many positions change).
    #[test]
    fn floor_counts_match_the_paper(n in 1usize..40, rate in 0.0f64..=1.0, seed in 0u64..500) {
        let seq: Vec<u32> = (1..=n as u32).collect(); // distinct items
        let floor = (rate * n as f64).floor() as usize;

        let cropped = Crop { eta: rate }.apply(&seq, &mut rng(seed));
        prop_assert_eq!(cropped.len(), floor.max(1));

        let token = 10_000u32;
        let masked = Mask { gamma: rate, mask_token: token }.apply(&seq, &mut rng(seed));
        let replaced = masked.iter().filter(|&&v| v == token).count();
        prop_assert_eq!(replaced, floor);

        let reordered = Reorder { beta: rate }.apply(&seq, &mut rng(seed));
        let moved = reordered.iter().zip(&seq).filter(|(x, y)| x != y).count();
        prop_assert!(moved <= floor, "reorder moved {moved} > window {floor}");
    }
}

/// Degenerate lengths n = 1 and n = 2: every operator must stay total and
/// well-formed where the floor counts collapse to 0 or the window covers
/// the whole sequence.
mod degenerate_lengths {
    use super::*;

    #[test]
    fn crop_of_singleton_is_the_singleton() {
        // ⌊η·1⌋ = 0 for every η < 1, but crop never returns an empty view.
        for eta in [0.0, 0.3, 0.99, 1.0] {
            for seed in 0..20 {
                let out = Crop { eta }.apply(&[7], &mut rng(seed));
                assert_eq!(out, vec![7], "eta {eta} seed {seed}");
            }
        }
    }

    #[test]
    fn crop_of_pair_keeps_floor_eta_n() {
        // n = 2: ⌊η·2⌋ is 0 (→ clamped to 1), 1, or 2.
        for seed in 0..20 {
            assert_eq!(Crop { eta: 0.4 }.apply(&[3, 9], &mut rng(seed)).len(), 1);
            let one = Crop { eta: 0.5 }.apply(&[3, 9], &mut rng(seed));
            assert_eq!(one.len(), 1);
            assert!(one == [3] || one == [9], "not a window: {one:?}");
            assert_eq!(Crop { eta: 1.0 }.apply(&[3, 9], &mut rng(seed)), vec![3, 9]);
        }
    }

    #[test]
    fn mask_of_singleton_is_all_or_nothing() {
        for seed in 0..20 {
            // ⌊γ·1⌋ = 0: untouched
            assert_eq!(Mask { gamma: 0.99, mask_token: 5 }.apply(&[7], &mut rng(seed)), vec![7]);
            // ⌊γ·1⌋ = 1: fully masked
            assert_eq!(Mask { gamma: 1.0, mask_token: 5 }.apply(&[7], &mut rng(seed)), vec![5]);
        }
    }

    #[test]
    fn mask_of_pair_masks_exactly_floor_gamma_n() {
        for seed in 0..20 {
            let out = Mask { gamma: 0.5, mask_token: 5 }.apply(&[3, 9], &mut rng(seed));
            assert_eq!(out.iter().filter(|&&v| v == 5).count(), 1);
            assert!(out == [5, 9] || out == [3, 5], "unexpected mask: {out:?}");
        }
    }

    #[test]
    fn reorder_of_singleton_is_identity() {
        for beta in [0.0, 0.5, 1.0] {
            for seed in 0..20 {
                assert_eq!(Reorder { beta }.apply(&[7], &mut rng(seed)), vec![7]);
            }
        }
    }

    #[test]
    fn reorder_of_pair_is_a_permutation() {
        // β = 1: the window is the whole pair, so the output is one of the
        // two orders; β < 0.5 gives window ⌊β·2⌋ ≤ 1, i.e. identity.
        for seed in 0..20 {
            let out = Reorder { beta: 1.0 }.apply(&[3, 9], &mut rng(seed));
            assert!(out == [3, 9] || out == [9, 3], "not a permutation: {out:?}");
            assert_eq!(Reorder { beta: 0.49 }.apply(&[3, 9], &mut rng(seed)), vec![3, 9]);
        }
    }

    #[test]
    fn two_views_survive_degenerate_lengths() {
        let set = AugmentationSet::paper_full(0.5, 0.5, 0.5, 10_000);
        for n in [1usize, 2] {
            let seq: Vec<u32> = (1..=n as u32).collect();
            for seed in 0..50 {
                let (a, b) = set.two_views(&seq, &mut rng(seed));
                assert!(!a.is_empty() && !b.is_empty(), "n {n} seed {seed}");
                assert!(a.len() <= n && b.len() <= n);
            }
        }
    }
}
