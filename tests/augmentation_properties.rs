//! Property-based tests on the paper's augmentation operators (Eq. 4-6):
//! structural invariants that must hold for arbitrary sequences and rates.

use cp4rec_repro::cl4srec::augment::{Augmentation, AugmentationSet, Crop, Mask, Reorder};
use cp4rec_repro::tensor::init::rng;
use proptest::prelude::*;

fn arb_seq() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(1u32..500, 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Crop output is a contiguous sub-slice of the input with length
    /// max(1, ⌊η·n⌋).
    #[test]
    fn crop_is_a_contiguous_subslice(seq in arb_seq(), eta in 0.0f64..=1.0, seed in 0u64..500) {
        let mut r = rng(seed);
        let out = Crop { eta }.apply(&seq, &mut r);
        let expected = ((eta * seq.len() as f64).floor() as usize).clamp(1, seq.len());
        prop_assert_eq!(out.len(), expected);
        let found = seq.windows(out.len()).any(|w| w == &out[..]);
        prop_assert!(found, "crop output is not a window of the input");
    }

    /// Mask preserves length and positions; exactly ⌊γ·n⌋ entries become
    /// the mask token (assuming the token is not already in the sequence).
    #[test]
    fn mask_preserves_shape(seq in arb_seq(), gamma in 0.0f64..=1.0, seed in 0u64..500) {
        let token = 10_000u32;
        let mut r = rng(seed);
        let out = Mask { gamma, mask_token: token }.apply(&seq, &mut r);
        prop_assert_eq!(out.len(), seq.len());
        let masked = out.iter().filter(|&&v| v == token).count();
        prop_assert_eq!(masked, (gamma * seq.len() as f64).floor() as usize);
        for (o, s) in out.iter().zip(&seq) {
            prop_assert!(*o == token || o == s);
        }
    }

    /// Reorder is a permutation: same multiset, same length, and items
    /// outside one window of length ⌊β·n⌋ keep their positions.
    #[test]
    fn reorder_is_a_windowed_permutation(seq in arb_seq(), beta in 0.0f64..=1.0, seed in 0u64..500) {
        let mut r = rng(seed);
        let out = Reorder { beta }.apply(&seq, &mut r);
        prop_assert_eq!(out.len(), seq.len());
        let mut a = out.clone();
        let mut b = seq.clone();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b, "reorder changed the multiset");
        let window = (beta * seq.len() as f64).floor() as usize;
        let moved: Vec<usize> = out
            .iter()
            .zip(&seq)
            .enumerate()
            .filter(|(_, (x, y))| x != y)
            .map(|(i, _)| i)
            .collect();
        if let (Some(&first), Some(&last)) = (moved.first(), moved.last()) {
            prop_assert!(last - first < window.max(1), "changes escape the window");
        }
    }

    /// The sampled two views never lose the whole sequence, and the set is
    /// closed over its operators (outputs only contain input items or the
    /// mask token).
    #[test]
    fn two_views_are_wellformed(seq in arb_seq(), seed in 0u64..500) {
        let token = 10_000u32;
        let set = AugmentationSet::paper_full(0.5, 0.5, 0.5, token);
        let mut r = rng(seed);
        let (a, b) = set.two_views(&seq, &mut r);
        for view in [&a, &b] {
            prop_assert!(!view.is_empty());
            for &v in view {
                prop_assert!(v == token || seq.contains(&v));
            }
        }
    }

    /// Augmentations are deterministic given the RNG state.
    #[test]
    fn operators_are_deterministic(seq in arb_seq(), seed in 0u64..500) {
        let ops: Vec<Box<dyn Augmentation>> = vec![
            Box::new(Crop { eta: 0.5 }),
            Box::new(Mask { gamma: 0.5, mask_token: 10_000 }),
            Box::new(Reorder { beta: 0.5 }),
        ];
        for op in &ops {
            let out1 = op.apply(&seq, &mut rng(seed));
            let out2 = op.apply(&seq, &mut rng(seed));
            prop_assert_eq!(out1, out2);
        }
    }
}
