//! Parallel-vs-serial equivalence: pins the determinism contract of the
//! multi-threaded training stack.
//!
//! Three claims are checked:
//! 1. Augmented contrastive batches are **bit-exact** across pool sizes —
//!    per-sequence ChaCha substreams make the sampled views a function of
//!    `(aug_base, global index)` only, never of worker count.
//! 2. The banded embedding-gradient scatter is **bit-exact** across pool
//!    sizes (destination banding preserves per-row add order).
//! 3. A data-parallel fit epoch (dropout off) matches the serial epoch to
//!    ≤1e-6 relative on every parameter — the only difference is the
//!    tree-sum re-association of shard gradients.

use cp4rec_repro::cl4srec::{AugmentationSet, Cl4sRec, Cl4sRecConfig, Mask, PretrainOptions};
use cp4rec_repro::data::{Dataset, Split};
use cp4rec_repro::models::common::TrainOptions;
use cp4rec_repro::models::{EncoderConfig, SasRec};
use cp4rec_repro::tensor::init::rng;
use cp4rec_repro::tensor::nn::{HasParams, Step};
use proptest::prelude::*;

/// Asserts `‖a − b‖₂ ≤ tol · (1 + ‖a‖₂)`, accumulated in f64 — a mixed
/// absolute/relative bound at tensor granularity. Gradients that are pure
/// cancellation noise get judged absolutely (e.g. the key-projection bias:
/// softmax shift-invariance makes its true gradient exactly zero, so the
/// f32 residue has no meaningful relative scale); everything else is held
/// to the relative contract.
fn assert_close_l2(name: &str, a: &[f32], b: &[f32], tol: f64) {
    assert_eq!(a.len(), b.len(), "{name}: length mismatch");
    let (mut diff, mut norm) = (0.0f64, 0.0f64);
    for (&x, &y) in a.iter().zip(b) {
        diff += f64::from(x - y).powi(2);
        norm += f64::from(x).powi(2);
    }
    let (diff, norm) = (diff.sqrt(), norm.sqrt());
    assert!(diff <= tol * (1.0 + norm), "{name}: ‖Δ‖ {diff:.2e} vs ‖a‖ {norm:.2e} (tol {tol:.0e})");
}

fn pool(n: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new().num_threads(n).build().expect("pool builds")
}

fn tiny_cfg(num_items: usize, dropout: f32) -> EncoderConfig {
    EncoderConfig { num_items, d: 16, heads: 2, layers: 1, max_len: 8, dropout }
}

fn toy_dataset(num_items: usize, users: usize) -> Dataset {
    let seqs =
        (0..users).map(|u| (0..8).map(|i| ((u + i) % num_items) as u32 + 1).collect()).collect();
    Dataset::new(seqs, num_items)
}

/// Claim 1: the contrastive loss of a seeded batch (dropout off, so no
/// draws from the per-call rng) is bit-identical whether the augmentation
/// pipeline runs serially or on a 4-worker pool.
#[test]
fn augmented_batches_are_bit_exact_across_pool_sizes() {
    let ds = toy_dataset(12, 24);
    let split = Split::leave_one_out(&ds);
    let model = Cl4sRec::new(Cl4sRecConfig { encoder: tiny_cfg(12, 0.0), tau: 0.5 }, 1);
    let augs = AugmentationSet::paper_full(0.6, 0.3, 0.5, model.mask_token());
    let seqs: Vec<&[u32]> = (0..16).map(|u| split.train_sequence(u)).collect();

    let loss_of = |aug_base: u64| {
        let mut step = Step::new();
        let mut r = rng(99); // untouched: training=false draws no dropout
        let loss =
            model.contrastive_loss_seeded(&mut step, &seqs, &augs, false, aug_base, 0, &mut r);
        step.tape.value(loss).item()
    };
    for aug_base in [0u64, 7, 0xdead_beef] {
        let serial = loss_of(aug_base);
        let par = pool(4).install(|| loss_of(aug_base));
        assert_eq!(serial.to_bits(), par.to_bits(), "aug_base {aug_base} diverged");
        // and the substream really keys the result: a different base moves it
        assert_ne!(serial.to_bits(), loss_of(aug_base ^ 1).to_bits());
    }
}

/// Claim 3, gradient level: sharding one next-item batch in two, scaling
/// each shard loss by its valid-target share, and tree-reducing matches
/// the serial full-batch gradient to ≤1e-6 relative on every entry.
#[test]
fn data_parallel_gradients_match_serial_within_1e6() {
    use cp4rec_repro::data::batch::{next_item_batch, NegativeSampler};
    use cp4rec_repro::models::dp;

    let ds = toy_dataset(10, 24);
    let split = Split::leave_one_out(&ds);
    let model = SasRec::new(tiny_cfg(10, 0.0), 7);
    let seqs: Vec<&[u32]> = (0..24).map(|u| split.train_sequence(u)).collect();
    let mut sampler = NegativeSampler::new(split.num_items(), 11);
    let batch = next_item_batch(&seqs, 8, &mut sampler);

    // Serial full-batch gradient, in visit order.
    let mut r = rng(0);
    let mut step = Step::new();
    let loss = model.next_item_loss(&mut step, &batch, false, &mut r);
    let grads = step.tape.backward(loss);
    let serial = dp::grads_in_visit_order(model.encoder(), &step, &grads);

    // Two shards, each scaled by its share of valid targets, tree-reduced.
    let total_valid: f32 = batch.target_mask.iter().sum();
    let per: Vec<_> = dp::shard_ranges(batch.b, 2)
        .into_iter()
        .map(|(lo, hi)| {
            let sub = dp::slice_batch(&batch, lo, hi);
            let w = sub.target_mask.iter().sum::<f32>() / total_valid;
            let mut r = rng(0);
            let mut step = Step::new();
            let loss = model.next_item_loss(&mut step, &sub, false, &mut r);
            let scaled = step.tape.scale(loss, w);
            let grads = step.tape.backward(scaled);
            dp::grads_in_visit_order(model.encoder(), &step, &grads)
        })
        .collect();
    let reduced = dp::tree_reduce(per);

    assert_eq!(serial.len(), reduced.len());
    let names = model.encoder().param_names();
    let mut checked = 0usize;
    for ((s, p), name) in serial.iter().zip(&reduced).zip(&names) {
        let (Some(s), Some(p)) = (s, p) else {
            assert_eq!(s.is_some(), p.is_some(), "{name}: gradient presence diverged");
            continue;
        };
        assert_close_l2(name, s.data(), p.data(), 1e-6);
        checked += s.len();
    }
    assert!(checked > 1000, "suspiciously few gradient entries compared: {checked}");
}

/// Claim 3, end-to-end: a data-parallel epoch (2 shards, dropout off)
/// produces the same parameters as the serial epoch. Adam's
/// `m/(√v + ε)` normalisation amplifies the tree-sum re-association on
/// near-zero moments, so the epoch-level budget is 1e-5 relative.
#[test]
fn data_parallel_sasrec_epoch_matches_serial() {
    let ds = toy_dataset(10, 32);
    let split = Split::leave_one_out(&ds);
    let opts = |dp: usize| TrainOptions {
        epochs: 1,
        batch_size: 32, // one batch per epoch: both runs see the same streams
        patience: None,
        probe_every: 0,
        data_parallel: dp,
        ..TrainOptions::default()
    };

    let mut serial = SasRec::new(tiny_cfg(10, 0.0), 5);
    serial.fit(&split, &opts(1));
    let mut sharded = SasRec::new(tiny_cfg(10, 0.0), 5);
    sharded.fit(&split, &opts(2));

    let mut collected: Vec<(String, Vec<f32>)> = Vec::new();
    serial.visit(&mut |p| collected.push((p.name().to_string(), p.value().data().to_vec())));
    let mut idx = 0;
    let mut checked = 0usize;
    sharded.visit(&mut |p| {
        let (name, sv) = &collected[idx];
        idx += 1;
        assert_eq!(name, p.name());
        assert_close_l2(name, sv, p.value().data(), 1e-5);
        checked += sv.len();
    });
    assert_eq!(idx, collected.len());
    assert!(checked > 1000, "suspiciously few parameters compared: {checked}");
}

/// The data-parallel contrastive and joint paths train end-to-end (the
/// in-shard-negatives objective still decreases and stays finite).
#[test]
fn data_parallel_cl4srec_paths_run() {
    let ds = toy_dataset(12, 32);
    let split = Split::leave_one_out(&ds);
    let mut model = Cl4sRec::new(Cl4sRecConfig { encoder: tiny_cfg(12, 0.1), tau: 0.5 }, 3);
    let augs = AugmentationSet::single(Mask { gamma: 0.4, mask_token: model.mask_token() });
    let report = model.pretrain(
        &split,
        &augs,
        &PretrainOptions {
            epochs: 8,
            batch_size: 16,
            patience: None,
            data_parallel: 2,
            ..PretrainOptions::default()
        },
    );
    assert_eq!(report.losses.len(), 8);
    assert!(report.losses.iter().all(|l| l.is_finite()));
    let first2 = (report.losses[0] + report.losses[1]) / 2.0;
    let last2 = (report.losses[6] + report.losses[7]) / 2.0;
    assert!(last2 < first2, "contrastive loss not trending down: {:?}", report.losses);

    let joint = model.fit_joint(
        &split,
        &augs,
        0.1,
        &TrainOptions {
            epochs: 2,
            batch_size: 16,
            patience: None,
            valid_probe_users: 8,
            data_parallel: 2,
            ..TrainOptions::default()
        },
    );
    assert_eq!(joint.epochs_run(), 2);
    assert!(joint.epochs.iter().all(|e| e.loss.is_finite()));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Claim 2: the embedding backward scatter is bit-exact on a real pool
    /// for arbitrary id multisets (duplicates included).
    #[test]
    fn embedding_scatter_is_bit_exact_on_a_pool(
        ids in proptest::collection::vec(0u32..64, 2..80),
        seed in 0u64..1000,
    ) {
        use cp4rec_repro::tensor::{init, Tape};
        let table = init::normal([64, 8], 0.5, &mut rng(seed));
        let grad_of = |threads: Option<usize>| {
            let run = || {
                let mut t = Tape::new();
                let leaf = t.leaf(table.clone());
                let e = t.embedding(leaf, &ids, &[ids.len()]);
                let s = t.sum_all(e);
                let g = t.backward(s);
                g.get(leaf).unwrap().data().to_vec()
            };
            match threads {
                Some(n) => pool(n).install(run),
                None => run(),
            }
        };
        let serial = grad_of(None);
        for threads in [2, 4] {
            let par = grad_of(Some(threads));
            for (a, b) in serial.iter().zip(&par) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
