#!/bin/bash
# Regenerates every table and figure of the paper at laptop scale.
# Usage: bash run_experiments.sh [scale_table2] [scale_figs]
set -e
cd "$(dirname "$0")"
ST2=${1:-0.03}
SFIG=${2:-0.02}
mkdir -p results
BIN=target/release
$BIN/table1 --scale $ST2 --out results/table1.json | tee results/table1.md
$BIN/table2 --scale $ST2 --epochs 18 --pretrain-epochs 10 --out results/table2.json | tee results/table2.md
$BIN/fig4 --scale $SFIG --epochs 14 --pretrain-epochs 8 --datasets beauty,yelp --out results/fig4.json | tee results/fig4.md
$BIN/fig5 --scale $SFIG --epochs 14 --pretrain-epochs 8 --out results/fig5.json | tee results/fig5.md
$BIN/fig6 --scale $SFIG --epochs 14 --pretrain-epochs 8 --out results/fig6.json | tee results/fig6.md
echo ALL_EXPERIMENTS_DONE
