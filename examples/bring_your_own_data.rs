//! Running the full paper pipeline on your own interaction log.
//!
//! Any dataset exported as `user,item,timestamp` CSV goes through exactly
//! the preprocessing the paper uses (§4.1.1): 5-core filtering,
//! chronological sorting, dense reindexing, leave-one-out splitting. This
//! example writes a small CSV to a temp directory, loads it back, and
//! trains a model — substitute the path with your Amazon/Yelp export.
//!
//! ```text
//! cargo run --release --example bring_your_own_data [path/to/log.csv]
//! ```

use cp4rec_repro::data::csv::{read_interactions, write_interactions};
use cp4rec_repro::data::five_core::five_core;
use cp4rec_repro::data::split::Split;
use cp4rec_repro::data::synthetic::{generate_log, SyntheticConfig};
use cp4rec_repro::data::{build_dataset, Dataset};
use cp4rec_repro::eval::{evaluate, EvalOptions, EvalTarget};
use cp4rec_repro::models::{EncoderConfig, SasRec, TrainOptions};

fn main() {
    // 1. Obtain a CSV: either the user's own file, or a demo file we
    //    generate on the spot.
    let path = match std::env::args().nth(1) {
        Some(p) => std::path::PathBuf::from(p),
        None => {
            let dir = std::env::temp_dir().join("cl4srec_demo");
            std::fs::create_dir_all(&dir).expect("temp dir");
            let path = dir.join("interactions.csv");
            let mut cfg = SyntheticConfig::beauty(0.01);
            cfg.num_users = 400;
            write_interactions(&path, &generate_log(&cfg)).expect("write demo CSV");
            println!("no CSV given — wrote a demo log to {}", path.display());
            path
        }
    };

    // 2. The paper's preprocessing pipeline.
    let raw = read_interactions(&path).expect("readable CSV");
    println!("loaded {} events", raw.len());
    let filtered = five_core(&raw);
    println!("after 5-core filter: {} events", filtered.len());
    let dataset: Dataset = build_dataset(&filtered);
    let stats = dataset.stats();
    println!(
        "dataset: {} users, {} items, avg length {:.1}, density {:.2}%",
        stats.users,
        stats.items,
        stats.avg_length,
        100.0 * stats.density
    );

    // 3. Split, train, evaluate.
    let split = Split::leave_one_out(&dataset);
    let mut model = SasRec::new(EncoderConfig::small(dataset.num_items()), 42);
    let report = model
        .fit(&split, &TrainOptions { epochs: 8, valid_probe_users: 150, ..Default::default() });
    println!("trained {} epochs (final loss {:.3})", report.epochs_run(), report.final_loss());
    let m = evaluate(&model, &split, EvalTarget::Test, &EvalOptions::default());
    println!("test: HR@10 = {:.4}, NDCG@10 = {:.4}", m.hr_at(10), m.ndcg_at(10));
}
