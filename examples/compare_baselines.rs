//! E-commerce scenario (the paper's motivating workload): compare the
//! sequential recommenders head-to-head on a Beauty-like catalog and print
//! a miniature Table 2.
//!
//! ```text
//! cargo run --release --example compare_baselines
//! ```

use cp4rec_repro::cl4srec::augment::{AugmentationSet, Mask};
use cp4rec_repro::cl4srec::model::{Cl4sRec, Cl4sRecConfig, PretrainOptions};
use cp4rec_repro::data::synthetic::{generate_dataset, SyntheticConfig};
use cp4rec_repro::data::Split;
use cp4rec_repro::eval::{evaluate, DatasetResults, EvalOptions, EvalTarget};
use cp4rec_repro::models::{EncoderConfig, Pop, SasRec, TrainOptions};

fn main() {
    let dataset = generate_dataset(&SyntheticConfig::beauty(0.015));
    let split = Split::leave_one_out(&dataset);
    println!("beauty-like catalog: {} users, {} items", split.num_users(), dataset.num_items());
    let opts = TrainOptions { epochs: 10, valid_probe_users: 150, ..Default::default() };
    let eval_opts = EvalOptions::default();
    let mut results = DatasetResults::new("beauty (scale 0.015)");

    // Non-personalised floor.
    let pop = Pop::fit(&split);
    results.push("Pop", evaluate(&pop, &split, EvalTarget::Test, &eval_opts));

    // The strongest baseline.
    let mut sasrec = SasRec::new(EncoderConfig::small(dataset.num_items()), 42);
    sasrec.fit(&split, &opts);
    results.push("SASRec", evaluate(&sasrec, &split, EvalTarget::Test, &eval_opts));

    // The paper's model: contrastive pre-training on top of the same
    // encoder, same fine-tuning budget.
    let mut cl = Cl4sRec::new(Cl4sRecConfig::small(dataset.num_items()), 42);
    let augs = AugmentationSet::single(Mask { gamma: 0.5, mask_token: cl.mask_token() });
    cl.fit(&split, &augs, &PretrainOptions { epochs: 6, ..Default::default() }, &opts);
    results.push("CL4SRec", evaluate(&cl, &split, EvalTarget::Test, &eval_opts));

    println!("\n{}", results.to_markdown(&["SASRec"]));
    let imp = results.improvement("SASRec", "CL4SRec", "HR", 10).unwrap_or(f64::NAN);
    println!("CL4SRec improves HR@10 over SASRec by {imp:+.1}% (paper: +8.16% on average)");
}
