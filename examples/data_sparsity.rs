//! The paper's RQ4 scenario in miniature: how do SASRec and CL4SRec degrade
//! when training data shrinks? Trains both models on 30% and 100% of the
//! training users and compares (the full sweep is
//! `cargo run -p seqrec-bench --bin fig6`).
//!
//! ```text
//! cargo run --release --example data_sparsity
//! ```

use cp4rec_repro::cl4srec::augment::{AugmentationSet, Mask};
use cp4rec_repro::cl4srec::model::{Cl4sRec, Cl4sRecConfig, PretrainOptions};
use cp4rec_repro::data::synthetic::{generate_dataset, SyntheticConfig};
use cp4rec_repro::data::Split;
use cp4rec_repro::eval::{evaluate, EvalOptions, EvalTarget, RankingMetrics};
use cp4rec_repro::models::{EncoderConfig, SasRec, TrainOptions};

fn run_pair(
    split: &Split,
    num_items: usize,
    users: Option<Vec<usize>>,
) -> (RankingMetrics, RankingMetrics) {
    let opts = TrainOptions {
        epochs: 10,
        valid_probe_users: 150,
        train_users: users,
        ..Default::default()
    };
    let mut sasrec = SasRec::new(EncoderConfig::small(num_items), 42);
    sasrec.fit(split, &opts);
    let sas = evaluate(&sasrec, split, EvalTarget::Test, &EvalOptions::default());

    let mut cl = Cl4sRec::new(Cl4sRecConfig::small(num_items), 42);
    let augs = AugmentationSet::single(Mask { gamma: 0.5, mask_token: cl.mask_token() });
    cl.fit(split, &augs, &PretrainOptions { epochs: 6, ..Default::default() }, &opts);
    let clm = evaluate(&cl, split, EvalTarget::Test, &EvalOptions::default());
    (sas, clm)
}

fn main() {
    let dataset = generate_dataset(&SyntheticConfig::beauty(0.015));
    let split = Split::leave_one_out(&dataset);
    println!("{} users, {} items\n", split.num_users(), dataset.num_items());

    println!("| training data | SASRec HR@10 | CL4SRec HR@10 | gap |");
    println!("|---|---|---|---|");
    for frac in [0.3, 1.0] {
        let users = (frac < 1.0).then(|| split.train_user_subset(frac, 42));
        let (sas, cl) = run_pair(&split, dataset.num_items(), users);
        println!(
            "| {:>4.0}% | {:.4} | {:.4} | {:+.1}% |",
            frac * 100.0,
            sas.hr_at(10),
            cl.hr_at(10),
            100.0 * (cl.hr_at(10) - sas.hr_at(10)) / sas.hr_at(10).max(1e-9)
        );
    }
    println!(
        "\nexpected shape (paper Fig. 6): both degrade with less data; \
         CL4SRec stays ahead, and its relative advantage grows as data shrinks."
    );
}
