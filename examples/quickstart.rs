//! Quickstart: train CL4SRec on a small synthetic dataset and produce
//! top-5 recommendations for one user.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cp4rec_repro::cl4srec::augment::{AugmentationSet, Mask};
use cp4rec_repro::cl4srec::model::{Cl4sRec, Cl4sRecConfig, PretrainOptions};
use cp4rec_repro::data::synthetic::{generate_dataset, SyntheticConfig};
use cp4rec_repro::data::Split;
use cp4rec_repro::eval::{evaluate, EvalOptions, EvalTarget, SequenceScorer};
use cp4rec_repro::models::TrainOptions;

fn main() {
    // 1. Data: a Beauty-like synthetic dataset (5-core filtered, dense ids).
    let dataset = generate_dataset(&SyntheticConfig::beauty(0.015));
    let split = Split::leave_one_out(&dataset);
    println!(
        "dataset: {} users, {} items, {} actions",
        split.num_users(),
        dataset.num_items(),
        dataset.num_actions()
    );

    // 2. Model: CL4SRec = Transformer encoder + contrastive pre-training.
    let mut model = Cl4sRec::new(Cl4sRecConfig::small(dataset.num_items()), 42);
    let augs = AugmentationSet::single(Mask { gamma: 0.5, mask_token: model.mask_token() });

    // 3. Two-stage training: NT-Xent pre-training, then next-item
    //    fine-tuning (both stages use Adam, as in the paper).
    let pre_opts = PretrainOptions { epochs: 5, verbosity: 1, ..Default::default() };
    let fine_opts =
        TrainOptions { epochs: 10, verbosity: 1, valid_probe_users: 150, ..Default::default() };
    let (pre, fine) = model.fit(&split, &augs, &pre_opts, &fine_opts);
    println!(
        "pre-training: {} epochs (final contrastive loss {:.3})",
        pre.losses.len(),
        pre.losses.last().unwrap()
    );
    println!("fine-tuning: {} epochs", fine.epochs_run());

    // 4. Evaluate with full-catalog ranking (no sampled metrics).
    let metrics = evaluate(&model, &split, EvalTarget::Test, &EvalOptions::default());
    println!(
        "test: HR@10 = {:.4}, NDCG@10 = {:.4}, MRR = {:.4}",
        metrics.hr_at(10),
        metrics.ndcg_at(10),
        metrics.mrr
    );

    // 5. Recommend: score the whole catalog for user 0 and take the top 5
    //    items the user has not interacted with.
    let user = 0usize;
    let history = split.test_input(user);
    let scores = model.score_full_catalog(&[user], &[&history]);
    let seen: std::collections::HashSet<u32> = history.iter().copied().collect();
    let mut ranked: Vec<(u32, f32)> = scores[0]
        .iter()
        .enumerate()
        .skip(1) // id 0 is padding
        .filter(|(id, _)| !seen.contains(&(*id as u32)))
        .map(|(id, &s)| (id as u32, s))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("user {user} history (last 5): {:?}", &history[history.len().saturating_sub(5)..]);
    println!("top-5 recommendations: {:?}", &ranked[..5.min(ranked.len())]);
}
