//! Extending CL4SRec with a custom augmentation operator.
//!
//! The paper's framework is agnostic to the choice of operators (§3.2.1);
//! follow-up work (e.g. CoSeRec) added *item substitution*. This example
//! implements substitution — replace a fraction of items with co-occurring
//! ones — as a user-defined [`Augmentation`] and pre-trains with it.
//!
//! ```text
//! cargo run --release --example custom_augmentation
//! ```

use cp4rec_repro::cl4srec::augment::{Augmentation, AugmentationSet, Crop};
use cp4rec_repro::cl4srec::model::{Cl4sRec, Cl4sRecConfig, PretrainOptions};
use cp4rec_repro::data::synthetic::{generate_dataset, SyntheticConfig};
use cp4rec_repro::data::{Dataset, Split};
use cp4rec_repro::eval::{evaluate, EvalOptions, EvalTarget};
use cp4rec_repro::models::TrainOptions;
use cp4rec_repro::tensor::init::TensorRng;
use rand::Rng;

/// Item substitution: replace each item, with probability `rho`, by the item
/// that most often directly follows or precedes it in the training corpus —
/// a correlation-aware perturbation that keeps the sequence semantics.
struct Substitute {
    rho: f64,
    /// `best_neighbour[i]` = most frequent adjacent item of `i` (or `i`).
    best_neighbour: Vec<u32>,
}

impl Substitute {
    fn fit(dataset: &Dataset, rho: f64) -> Self {
        let n = dataset.num_items() + 1;
        // count adjacency (undirected) and keep the argmax per item
        let mut counts = vec![std::collections::HashMap::<u32, u32>::new(); n];
        for seq in dataset.sequences() {
            for w in seq.windows(2) {
                *counts[w[0] as usize].entry(w[1]).or_default() += 1;
                *counts[w[1] as usize].entry(w[0]).or_default() += 1;
            }
        }
        let best_neighbour = (0..n as u32)
            .map(|i| counts[i as usize].iter().max_by_key(|(_, &c)| c).map_or(i, |(&j, _)| j))
            .collect();
        Substitute { rho, best_neighbour }
    }
}

impl Augmentation for Substitute {
    fn apply(&self, seq: &[u32], rng: &mut TensorRng) -> Vec<u32> {
        seq.iter()
            .map(|&v| if rng.gen::<f64>() < self.rho { self.best_neighbour[v as usize] } else { v })
            .collect()
    }
    fn name(&self) -> &'static str {
        "substitute"
    }
}

fn main() {
    let dataset = generate_dataset(&SyntheticConfig::toys(0.015));
    let split = Split::leave_one_out(&dataset);
    println!("toys-like catalog: {} users, {} items", split.num_users(), dataset.num_items());

    // Pre-train with crop + the custom substitution operator.
    let substitute = Substitute::fit(&dataset, 0.3);
    let augs = AugmentationSet::pair(Crop { eta: 0.6 }, substitute);
    println!("augmentation set: {:?}", augs.names());

    let mut model = Cl4sRec::new(Cl4sRecConfig::small(dataset.num_items()), 7);
    let (pre, fine) = model.fit(
        &split,
        &augs,
        &PretrainOptions { epochs: 6, verbosity: 1, ..Default::default() },
        &TrainOptions { epochs: 10, valid_probe_users: 150, ..Default::default() },
    );
    println!(
        "pre-trained {} epochs (loss {:.3} -> {:.3}), fine-tuned {} epochs",
        pre.losses.len(),
        pre.losses.first().unwrap(),
        pre.losses.last().unwrap(),
        fine.epochs_run()
    );
    let m = evaluate(&model, &split, EvalTarget::Test, &EvalOptions::default());
    println!("test: HR@10 = {:.4}, NDCG@10 = {:.4}", m.hr_at(10), m.ndcg_at(10));
}
