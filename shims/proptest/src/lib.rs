//! Offline shim for the `proptest` subset used by this workspace: the
//! [`proptest!`] macro, range/tuple strategies, [`collection::vec`],
//! `prop_map`, `Just`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Cases are generated from a deterministic per-test RNG. Unlike real
//! proptest there is **no shrinking**: a failing case reports its number and
//! message; re-running reproduces it (generation is seeded by test name).

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Test-runner configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed — the test fails.
    Fail(String),
    /// `prop_assume!` rejected the inputs — the case is retried.
    Reject(String),
}

/// Deterministic generator driving strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds from a test-name hash and case counter.
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound > 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX { return rng.next_u64() as $t; }
                lo.wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}
int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let v = self.start + (self.end - self.start) * rng.unit_f64() as $t;
                if v < self.end { v } else { self.start }
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                // Closed interval: unit_f64() is in [0,1), so stretch slightly
                // and clamp to make `hi` reachable.
                let v = lo + (hi - lo) * (rng.unit_f64() * 1.0000001) as $t;
                if v > hi { hi } else { v }
            }
        }
    )*};
}
float_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A: 0);
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification: an exact `usize` or a range of lengths.
    pub trait SizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty vec length range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty vec length range");
            lo + rng.below((hi - lo + 1) as u64) as usize
        }
    }

    /// Strategy for `Vec`s of `element` values with lengths from `size`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__l, __r) => {
                $crate::prop_assert!(__l == __r, "{:?} != {:?}", __l, __r);
            }
        }
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        match (&$a, &$b) {
            (__l, __r) => {
                $crate::prop_assert!(__l == __r, $($fmt)*);
            }
        }
    };
}

/// Fails the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        match (&$a, &$b) {
            (__l, __r) => {
                $crate::prop_assert!(__l != __r, "{:?} == {:?}", __l, __r);
            }
        }
    };
}

/// Rejects the current case (retried with fresh inputs) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(stringify!($cond).to_string()));
        }
    };
}

/// Hashes a test name into an RNG seed so each test gets a stable stream.
pub fn seed_for(name: &str, case: u64) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^ case.wrapping_mul(0x9E3779B97F4A7C15)
}

/// Declares property tests; mirrors real proptest's macro surface for the
/// forms used in this workspace (optional `#![proptest_config(..)]`, then
/// `fn name(binding in strategy, ...) { body }` items).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            // Real proptest has callers write `#[test]` themselves inside the
            // block; it arrives via `$meta`, so emitting another here would
            // register every test twice with libtest.
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __passed: u32 = 0;
                let mut __case: u64 = 0;
                let __max_attempts: u64 = (__config.cases as u64) * 20 + 1000;
                while __passed < __config.cases {
                    assert!(
                        __case < __max_attempts,
                        "proptest shim: too many rejected cases ({} attempts, {} passed)",
                        __case, __passed
                    );
                    let mut __rng =
                        $crate::TestRng::new($crate::seed_for(stringify!($name), __case));
                    __case += 1;
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )*
                    let __result: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match __result {
                        Ok(()) => __passed += 1,
                        Err($crate::TestCaseError::Reject(_)) => {}
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest case #{} failed: {}", __case, msg);
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_cover_ranges() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..500 {
            let v = crate::Strategy::generate(&(3usize..10), &mut rng);
            assert!((3..10).contains(&v));
            let f = crate::Strategy::generate(&(-1.0f32..1.0), &mut rng);
            assert!((-1.0..1.0).contains(&f));
            let (a, b) = crate::Strategy::generate(&(0u32..4, 10i64..12), &mut rng);
            assert!(a < 4 && (10..12).contains(&b));
        }
    }

    #[test]
    fn vec_strategy_and_map() {
        let mut rng = crate::TestRng::new(2);
        let s = crate::collection::vec(0u32..5, 2..6).prop_map(|v| v.len());
        for _ in 0..100 {
            let n = crate::Strategy::generate(&s, &mut rng);
            assert!((2..6).contains(&n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: assumptions retry, assertions check.
        #[test]
        fn macro_roundtrip(x in 0u64..100, v in crate::collection::vec(0u8..10, 0..8)) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(x, 13);
        }
    }
}
