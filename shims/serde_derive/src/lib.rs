//! Offline `#[derive(Serialize)]` / `#[derive(Deserialize)]` shim.
//!
//! Supports exactly what this workspace uses: **non-generic structs with
//! named fields** and no `#[serde(...)]` attributes. The generated
//! `Serialize` impl builds a `serde::Value::Object` field by field;
//! `Deserialize` derives to the marker impl (nothing in the workspace
//! deserializes). Written against the raw `proc_macro` API — no `syn`/
//! `quote`, which are unavailable offline.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` by emitting one `Object` entry per field.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, fields) = parse_named_struct(input);
    let mut pushes = String::new();
    for f in &fields {
        pushes.push_str(&format!(
            "m.push((\"{f}\".to_string(), serde::Serialize::to_value(&self.{f})));"
        ));
    }
    format!(
        "impl serde::Serialize for {name} {{\n\
             fn to_value(&self) -> serde::Value {{\n\
                 let mut m: Vec<(String, serde::Value)> = Vec::new();\n\
                 {pushes}\n\
                 serde::Value::Object(m)\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives the `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, _fields) = parse_named_struct(input);
    format!("impl serde::Deserialize for {name} {{}}")
        .parse()
        .expect("generated Deserialize impl parses")
}

/// Extracts the type name and field names from a named-field struct
/// definition. Panics with a clear message on unsupported shapes.
fn parse_named_struct(input: TokenStream) -> (String, Vec<String>) {
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes and visibility until the `struct` keyword.
    let mut name = None;
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Attribute: consume the following [...] group.
                let _ = iter.next();
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match iter.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    other => panic!("serde_derive shim: expected struct name, got {other:?}"),
                }
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                panic!("serde_derive shim supports only structs with named fields (got enum)")
            }
            _ => {}
        }
    }
    let name = name.expect("serde_derive shim: no `struct` keyword found");

    // Find the brace-delimited field block (skipping nothing else: the
    // workspace has no generic serde types).
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                panic!("serde_derive shim does not support generic struct `{name}`")
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde_derive shim does not support tuple struct `{name}`")
            }
            Some(_) => continue,
            None => panic!("serde_derive shim: struct `{name}` has no body"),
        }
    };

    // Field grammar: `#[attr]* pub? ident : type ,` — commas inside the type
    // only occur within groups (single token trees) or angle brackets, whose
    // nesting we track by hand.
    let mut fields = Vec::new();
    let mut expect_name = true;
    let mut angle_depth = 0i32;
    let mut body_iter = body.into_iter().peekable();
    while let Some(tt) = body_iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' && expect_name => {
                let _ = body_iter.next(); // the [...] attribute group
            }
            TokenTree::Ident(id) if expect_name => {
                let s = id.to_string();
                if s == "pub" {
                    // Optional `pub(crate)`-style restriction group.
                    if let Some(TokenTree::Group(g)) = body_iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            let _ = body_iter.next();
                        }
                    }
                } else {
                    fields.push(s);
                    expect_name = false;
                }
            }
            TokenTree::Punct(p) => match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => expect_name = true,
                _ => {}
            },
            _ => {}
        }
    }
    (name, fields)
}
