//! Offline shim for `serde_json`: renders the serde shim's [`Value`] tree as
//! JSON text (`to_string` / `to_string_pretty`).

pub use serde::Value;

/// Serialization error. The shim's writer is infallible, but the `Result`
/// return types mirror real `serde_json` so call sites compile unchanged.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json shim error")
    }
}

impl std::error::Error for Error {}

/// Converts any serializable value to its value tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// 2-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            // Rust's shortest-roundtrip Display; force a decimal point so the
            // output reads back as a float.
            let s = f.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_json_string(s, out),
        Value::Array(items) => write_seq(
            items.iter(),
            |item, out| write_value(item, indent, depth + 1, out),
            indent,
            depth,
            ('[', ']'),
            out,
        ),
        Value::Object(entries) => write_seq(
            entries.iter(),
            |(k, val), out| {
                write_json_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, indent, depth + 1, out);
            },
            indent,
            depth,
            ('{', '}'),
            out,
        ),
    }
}

fn write_seq<T>(
    items: impl ExactSizeIterator<Item = T>,
    mut write_item: impl FnMut(T, &mut String),
    indent: Option<usize>,
    depth: usize,
    (open, close): (char, char),
    out: &mut String,
) {
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        write_item(item, out);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::UInt(1)),
            ("b".to_string(), Value::Array(vec![Value::Float(0.5), Value::Null])),
            ("c".to_string(), Value::Str("x\"y".to_string())),
        ]);
        let mut out = String::new();
        write_value(&v, None, 0, &mut out);
        assert_eq!(out, r#"{"a":1,"b":[0.5,null],"c":"x\"y"}"#);
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = Value::Object(vec![("k".to_string(), Value::Array(vec![Value::UInt(1)]))]);
        let mut out = String::new();
        write_value(&v, Some(2), 0, &mut out);
        assert_eq!(out, "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn floats_always_read_back_as_floats() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&0.25f32).unwrap(), "0.25");
    }
}
