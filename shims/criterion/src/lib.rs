//! Offline shim for the `criterion` API subset used by this workspace's
//! benches: `Criterion::benchmark_group`, `sample_size`, `throughput`,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, `BenchmarkId`,
//! `Throughput::Elements`, and the `criterion_group!`/`criterion_main!`
//! macros.
//!
//! Measurement model: a short calibration run sizes the per-sample
//! iteration count so one sample costs roughly [`TARGET_SAMPLE_NANOS`];
//! `sample_size` samples are then timed and summarized as mean ± stddev.
//! With `Throughput::Elements(n)` the element rate (= GFLOP/s when `n` is
//! the FLOP count) is printed and recorded. Every result is appended as a
//! JSON line to `target/criterion-shim/results.jsonl` for downstream
//! scripts (`scripts/bench_matmul.sh`).

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Target wall-clock cost of one sample.
const TARGET_SAMPLE_NANOS: u64 = 40_000_000;

/// Hard cap on one benchmark's total measurement time.
const MAX_BENCH_NANOS: u64 = 4_000_000_000;

/// Work-per-iteration declaration used for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration (use FLOPs for GFLOP/s output).
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group: `function/parameter`.
pub struct BenchmarkId {
    name: String,
    param: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendering.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId { name: name.into(), param: Some(param.to_string()) }
    }

    /// An id from a parameter only.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId { name: String::new(), param: Some(param.to_string()) }
    }
}

/// Conversion into [`BenchmarkId`]; lets `bench_function` take plain strings.
pub trait IntoBenchmarkId {
    /// Converts.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { name: self.to_string(), param: None }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { name: self, param: None }
    }
}

/// Times closures repeatedly inside one benchmark.
pub struct Bencher {
    iters_per_sample: u64,
    samples: usize,
    /// Collected per-iteration sample means, nanoseconds.
    sample_means_ns: Vec<f64>,
}

impl Bencher {
    /// Runs `f` repeatedly, recording per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: run once, then scale iterations to the target sample cost.
        let t0 = Instant::now();
        std::hint::black_box(f());
        let once = t0.elapsed().as_nanos().max(1) as u64;
        self.iters_per_sample = (TARGET_SAMPLE_NANOS / once).clamp(1, 1_000_000);

        let budget = Duration::from_nanos(MAX_BENCH_NANOS);
        let started = Instant::now();
        self.sample_means_ns.clear();
        for _ in 0..self.samples {
            let s0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(f());
            }
            let dt = s0.elapsed().as_nanos() as f64;
            self.sample_means_ns.push(dt / self.iters_per_sample as f64);
            if started.elapsed() > budget && self.sample_means_ns.len() >= 3 {
                break;
            }
        }
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Declares work-per-iteration for subsequent benches in this group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the shim keys everything off samples.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b =
            Bencher { iters_per_sample: 1, samples: self.sample_size, sample_means_ns: Vec::new() };
        f(&mut b, input);
        self.record(&id, &b);
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut b =
            Bencher { iters_per_sample: 1, samples: self.sample_size, sample_means_ns: Vec::new() };
        f(&mut b);
        self.record(&id, &b);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn record(&mut self, id: &BenchmarkId, b: &Bencher) {
        if b.sample_means_ns.is_empty() {
            return;
        }
        let full_id = match (&id.name, &id.param) {
            (n, Some(p)) if n.is_empty() => format!("{}/{}", self.name, p),
            (n, Some(p)) => format!("{}/{}/{}", self.name, n, p),
            (n, None) => format!("{}/{}", self.name, n),
        };
        if !self.criterion.filter_matches(&full_id) {
            return;
        }
        let n = b.sample_means_ns.len() as f64;
        let mean = b.sample_means_ns.iter().sum::<f64>() / n;
        let var = b.sample_means_ns.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>()
            / n.max(2.0 - 1.0);
        let std = var.sqrt();
        let rate = self.throughput.map(|t| match t {
            Throughput::Elements(e) | Throughput::Bytes(e) => e as f64 / (mean * 1e-9),
        });
        self.criterion.report(ReportLine {
            id: full_id,
            group: self.name.clone(),
            function: id.name.clone(),
            param: id.param.clone(),
            mean_ns: mean,
            std_ns: std,
            samples: b.sample_means_ns.len(),
            iters_per_sample: b.iters_per_sample,
            elements_per_iter: self.throughput.map(|t| match t {
                Throughput::Elements(e) | Throughput::Bytes(e) => e,
            }),
            rate_per_sec: rate,
        });
    }
}

struct ReportLine {
    id: String,
    group: String,
    function: String,
    param: Option<String>,
    mean_ns: f64,
    std_ns: f64,
    samples: usize,
    iters_per_sample: u64,
    elements_per_iter: Option<u64>,
    rate_per_sec: Option<f64>,
}

/// Benchmark driver; collects results and appends them to the JSONL report.
pub struct Criterion {
    filter: Option<String>,
    out_path: std::path::PathBuf,
}

impl Default for Criterion {
    fn default() -> Self {
        // Respect an explicit filter argument (`cargo bench -- <substr>`)
        // while ignoring criterion CLI flags like --noplot / --bench.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-') && !a.is_empty());
        // Bench processes run with CWD = package dir, so a relative default
        // lands in <package>/target. Scripts aggregating across packages set
        // CRITERION_SHIM_OUT (or CARGO_TARGET_DIR) to collect in one place.
        let out_dir = std::env::var_os("CRITERION_SHIM_OUT")
            .map(std::path::PathBuf::from)
            .or_else(|| {
                std::env::var_os("CARGO_TARGET_DIR")
                    .map(|t| std::path::Path::new(&t).join("criterion-shim"))
            })
            .unwrap_or_else(|| std::path::Path::new("target").join("criterion-shim"));
        let _ = std::fs::create_dir_all(&out_dir);
        Criterion { filter, out_path: out_dir.join("results.jsonl") }
    }
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 20, throughput: None }
    }

    fn filter_matches(&self, id: &str) -> bool {
        match &self.filter {
            Some(f) => id.contains(f.as_str()),
            None => true,
        }
    }

    fn report(&mut self, line: ReportLine) {
        let human_time = format_ns(line.mean_ns);
        let rate = match line.rate_per_sec {
            Some(r) => format!("  thrpt: {:.3} Gelem/s", r / 1e9),
            None => String::new(),
        };
        println!(
            "{:<48} time: {human_time} ± {}{rate}  ({} samples × {} iters)",
            line.id,
            format_ns(line.std_ns),
            line.samples,
            line.iters_per_sample,
        );
        let json = format!(
            concat!(
                "{{\"id\":\"{}\",\"group\":\"{}\",\"function\":\"{}\",\"param\":{},",
                "\"mean_ns\":{},\"std_ns\":{},\"samples\":{},\"iters_per_sample\":{},",
                "\"elements_per_iter\":{},\"rate_per_sec\":{}}}"
            ),
            line.id,
            line.group,
            line.function,
            match &line.param {
                Some(p) => format!("\"{p}\""),
                None => "null".to_string(),
            },
            line.mean_ns,
            line.std_ns,
            line.samples,
            line.iters_per_sample,
            match line.elements_per_iter {
                Some(e) => e.to_string(),
                None => "null".to_string(),
            },
            match line.rate_per_sec {
                Some(r) => format!("{r}"),
                None => "null".to_string(),
            },
        );
        if let Ok(mut f) =
            std::fs::OpenOptions::new().create(true).append(true).open(&self.out_path)
        {
            let _ = writeln!(f, "{json}");
        }
    }

    /// Prints the closing line (called by `criterion_main!`).
    pub fn final_summary(&mut self) {
        println!("criterion-shim: results appended to {}", self.out_path.display());
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Bundles benchmark functions under one name, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates `main` running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_like_criterion() {
        let id = BenchmarkId::new("blocked_nn", 256);
        assert_eq!(id.name, "blocked_nn");
        assert_eq!(id.param.as_deref(), Some("256"));
    }

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher { iters_per_sample: 1, samples: 5, sample_means_ns: Vec::new() };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(11);
            x
        });
        assert!(!b.sample_means_ns.is_empty());
        assert!(b.sample_means_ns.iter().all(|&s| s > 0.0));
    }
}
