//! Offline shim for `rand_chacha`: exposes [`ChaCha8Rng`] with the seeding
//! API the workspace uses. The underlying generator is xoshiro256++ (not real
//! ChaCha8) — deterministic per seed, which is all the workspace relies on.

use rand::{RngCore, SeedableRng};

/// Deterministic seedable generator (xoshiro256++ core under a ChaCha8 name;
/// see `shims/README.md`).
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

/// Alias so code written against the 20-round variant also compiles.
pub type ChaCha20Rng = ChaCha8Rng;

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ step.
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 expansion, the standard way to seed xoshiro.
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        ChaCha8Rng { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should diverge, {same}/64 collisions");
    }

    #[test]
    fn float_helpers_work_through_rand_traits() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let mut acc = 0.0f64;
        for _ in 0..10_000 {
            acc += r.gen::<f64>();
        }
        let mean = acc / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
