//! Offline shim for `rand_chacha` 0.3 that implements the **real ChaCha
//! stream cipher** — not a lookalike. [`ChaCha8Rng`], [`ChaCha12Rng`] and
//! [`ChaCha20Rng`] produce bit-identical output to the registry crate for
//! the same seed:
//!
//! * the core is D. J. Bernstein's ChaCha block function (4/6/10 double
//!   rounds) with rand_chacha's state layout — 256-bit key from the seed,
//!   64-bit block counter (words 12–13) and 64-bit stream id (words 14–15),
//!   both zero after `from_seed`;
//! * output buffering follows `rand_core`'s `BlockRng` over a 4-block
//!   (64-word) buffer: `next_u32` consumes one word, `next_u64` two words
//!   (low then high) with `BlockRng`'s exact block-boundary behaviour, so
//!   interleaved 32/64-bit draws consume the stream like the real crate;
//! * seeding goes through the `rand` shim's `SeedableRng`, whose
//!   `seed_from_u64` is rand_core 0.6's PCG32 expansion bit for bit.
//!
//! The 20-round block function is pinned to the RFC 8439 appendix A.1
//! keystream test vector; the 8- and 12-round variants differ only in the
//! loop trip count. Unimplemented registry surface: `set_stream` /
//! `set_word_pos` and `fill_bytes` (nothing in this workspace uses them).

use rand::{RngCore, SeedableRng};

const ROWA: u32 = 0x6170_7865; // "expa"
const ROWB: u32 = 0x3320_646e; // "nd 3"
const ROWC: u32 = 0x7962_2d32; // "2-by"
const ROWD: u32 = 0x6b20_6574; // "te k"

/// Number of ChaCha blocks buffered per refill, matching `rand_chacha`'s
/// `BlockRng` results size (4 blocks = 64 words).
const BUF_BLOCKS: usize = 4;
const BUF_WORDS: usize = BUF_BLOCKS * 16;

#[inline(always)]
fn quarter_round(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

/// One ChaCha block: `DOUBLE_ROUNDS` column+diagonal round pairs over
/// `state`, then the feed-forward addition of the input state.
fn chacha_block(state: &[u32; 16], double_rounds: usize, out: &mut [u32]) {
    let mut x = *state;
    for _ in 0..double_rounds {
        quarter_round(&mut x, 0, 4, 8, 12);
        quarter_round(&mut x, 1, 5, 9, 13);
        quarter_round(&mut x, 2, 6, 10, 14);
        quarter_round(&mut x, 3, 7, 11, 15);
        quarter_round(&mut x, 0, 5, 10, 15);
        quarter_round(&mut x, 1, 6, 11, 12);
        quarter_round(&mut x, 2, 7, 8, 13);
        quarter_round(&mut x, 3, 4, 9, 14);
    }
    for (o, (xi, si)) in out.iter_mut().zip(x.iter().zip(state.iter())) {
        *o = xi.wrapping_add(*si);
    }
}

macro_rules! chacha_rng {
    ($name:ident, $double_rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Clone, Debug)]
        pub struct $name {
            /// Input block: constants, key, counter (words 12–13), stream
            /// id (words 14–15). The counter advances by [`BUF_BLOCKS`]
            /// per refill.
            state: [u32; 16],
            buf: [u32; BUF_WORDS],
            /// Next unconsumed word in `buf`; `BUF_WORDS` means empty.
            index: usize,
        }

        impl $name {
            /// Fills `buf` with the next [`BUF_BLOCKS`] consecutive blocks
            /// and leaves `index` at `offset` (`BlockRng::generate_and_set`).
            fn refill(&mut self, offset: usize) {
                for blk in 0..BUF_BLOCKS {
                    chacha_block(
                        &self.state,
                        $double_rounds,
                        &mut self.buf[blk * 16..(blk + 1) * 16],
                    );
                    let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12]))
                        .wrapping_add(1);
                    self.state[12] = counter as u32;
                    self.state[13] = (counter >> 32) as u32;
                }
                self.index = offset;
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: [u8; 32]) -> Self {
                let mut state = [0u32; 16];
                state[0] = ROWA;
                state[1] = ROWB;
                state[2] = ROWC;
                state[3] = ROWD;
                for (i, chunk) in seed.chunks_exact(4).enumerate() {
                    state[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
                }
                // Words 12..16 (counter + stream id) stay zero.
                $name { state, buf: [0; BUF_WORDS], index: BUF_WORDS }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.index >= BUF_WORDS {
                    self.refill(0);
                }
                let v = self.buf[self.index];
                self.index += 1;
                v
            }

            fn next_u64(&mut self) -> u64 {
                // rand_core's BlockRng::next_u64: low word first, with its
                // exact behaviour at the buffer boundary.
                let i = self.index;
                if i < BUF_WORDS - 1 {
                    self.index = i + 2;
                    u64::from(self.buf[i]) | u64::from(self.buf[i + 1]) << 32
                } else if i >= BUF_WORDS {
                    self.refill(2);
                    u64::from(self.buf[0]) | u64::from(self.buf[1]) << 32
                } else {
                    let lo = u64::from(self.buf[BUF_WORDS - 1]);
                    self.refill(1);
                    lo | u64::from(self.buf[0]) << 32
                }
            }
        }
    };
}

chacha_rng!(ChaCha8Rng, 4, "ChaCha with 8 rounds (rand_chacha's default speed/quality trade-off).");
chacha_rng!(ChaCha12Rng, 6, "ChaCha with 12 rounds.");
chacha_rng!(ChaCha20Rng, 10, "ChaCha with 20 rounds (the original full-round cipher).");

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// RFC 8439 appendix A.1, test vector #1: ChaCha20 block function with
    /// an all-zero key and nonce at block counter 0. With `from_seed([0;
    /// 32])` the shim's state is exactly that configuration (counter and
    /// stream id words all zero), so the first 16 output words must be this
    /// keystream.
    #[test]
    fn chacha20_matches_rfc8439_zero_key_vector() {
        const EXPECTED: [u8; 64] = [
            0x76, 0xb8, 0xe0, 0xad, 0xa0, 0xf1, 0x3d, 0x90, 0x40, 0x5d, 0x6a, 0xe5, 0x53, 0x86,
            0xbd, 0x28, 0xbd, 0xd2, 0x19, 0xb8, 0xa0, 0x8d, 0xed, 0x1a, 0xa8, 0x36, 0xef, 0xcc,
            0x8b, 0x77, 0x0d, 0xc7, 0xda, 0x41, 0x59, 0x7c, 0x51, 0x57, 0x48, 0x8d, 0x77, 0x24,
            0xe0, 0x3f, 0xb8, 0xd8, 0x4a, 0x37, 0x6a, 0x43, 0xb8, 0xf4, 0x15, 0x18, 0xa1, 0x1c,
            0xc3, 0x87, 0xb6, 0x69, 0xb2, 0xee, 0x65, 0x86,
        ];
        let mut rng = ChaCha20Rng::from_seed([0u8; 32]);
        for (w, expect) in EXPECTED.chunks_exact(4).enumerate() {
            let want = u32::from_le_bytes(expect.try_into().unwrap());
            assert_eq!(rng.next_u32(), want, "keystream word {w}");
        }
    }

    /// The counter must advance across blocks: words 16.. come from block 1,
    /// not a repeat of block 0.
    #[test]
    fn consecutive_blocks_differ() {
        let mut rng = ChaCha20Rng::from_seed([0u8; 32]);
        let block0: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let block1: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(block0, block1);
        // And refills continue the counter rather than restarting it.
        let mut long = ChaCha20Rng::from_seed([0u8; 32]);
        let first_65 = (0..BUF_WORDS + 1).map(|_| long.next_u32()).last();
        let mut manual_state = ChaCha20Rng::from_seed([0u8; 32]).state;
        manual_state[12] = 4; // block counter after one 4-block refill
        let mut block4 = [0u32; 16];
        chacha_block(&manual_state, 10, &mut block4);
        assert_eq!(first_65, Some(block4[0]));
    }

    /// `next_u64` = low word | high word << 32, including at the buffer
    /// boundary (BlockRng semantics).
    #[test]
    fn next_u64_pairs_words_low_first() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..BUF_WORDS {
            let lo = u64::from(b.next_u32());
            let hi = u64::from(b.next_u32());
            assert_eq!(a.next_u64(), lo | hi << 32);
        }
        // Odd offset across the refill boundary: consume one word, then
        // pairs; the straddling u64 takes buf[63] as low, next buf[0] as high.
        let mut c = ChaCha8Rng::seed_from_u64(7);
        let mut d = ChaCha8Rng::seed_from_u64(7);
        c.next_u32();
        d.next_u32();
        for _ in 0..BUF_WORDS {
            let lo = u64::from(d.next_u32());
            let hi = u64::from(d.next_u32());
            assert_eq!(c.next_u64(), lo | hi << 32);
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should diverge, {same}/64 collisions");
    }

    #[test]
    fn round_variants_are_distinct_ciphers() {
        let mut r8 = ChaCha8Rng::from_seed([1u8; 32]);
        let mut r12 = ChaCha12Rng::from_seed([1u8; 32]);
        let mut r20 = ChaCha20Rng::from_seed([1u8; 32]);
        let (a, b, c) = (r8.next_u32(), r12.next_u32(), r20.next_u32());
        assert!(a != b && b != c && a != c);
    }

    #[test]
    fn float_helpers_work_through_rand_traits() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let mut acc = 0.0f64;
        for _ in 0..10_000 {
            acc += r.gen::<f64>();
        }
        let mean = acc / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
