//! Parallel iterators over the rayon pool: slice/range/`Vec` sources, the
//! adapters the workspace uses (`map`, `enumerate`, `zip`, `filter`,
//! `fold`, `with_min_len`) and the terminal operations (`for_each`,
//! `reduce`, `collect`, `sum`, `count`).
//!
//! Execution model: every iterator knows its indexed length and can drive
//! any sub-range `[lo, hi)` serially, in index order, through a consumer
//! callback. A terminal op splits `[0, len)` into a deterministic set of
//! leaf ranges — a function of the length, the pool size and the `min_len`
//! hint only, never of runtime stealing — and runs the leaves under
//! [`crate::join`]. Per-leaf results (fold accumulators, collected
//! buffers, partial sums) are combined **in leaf order**, so results are
//! reproducible for a fixed pool size regardless of which worker ran what.
//!
//! At `current_num_threads() == 1` there is exactly one leaf covering the
//! whole range: a single accumulator folded left-to-right, bit-identical
//! to the serial shim this module replaced.

use std::marker::PhantomData;
use std::ops::Range;

// --- leaf scheduling ---------------------------------------------------------

/// Deterministic leaf partition of `[0, len)`: ~4 leaves per pool thread
/// (steal granularity without excessive job overhead), each at least
/// `min_len` items; one single leaf when the pool is serial.
fn leaf_ranges(len: usize, min_len: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return Vec::new();
    }
    let threads = crate::current_num_threads();
    if threads <= 1 {
        return vec![(0, len)];
    }
    let leaf = len.div_ceil(threads * 4).max(min_len).max(1);
    (0..len).step_by(leaf).map(|lo| (lo, (lo + leaf).min(len))).collect()
}

/// Runs `body` on every leaf range (possibly in parallel) and returns the
/// per-leaf results in leaf order.
fn leaf_map<T, B>(len: usize, min_len: usize, body: &B) -> Vec<T>
where
    T: Send,
    B: Fn(usize, usize) -> T + Sync,
{
    let ranges = leaf_ranges(len, min_len);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(ranges.len());
    slots.resize_with(ranges.len(), || None);
    fill_slots(&ranges, &mut slots, body);
    slots.into_iter().map(|s| s.expect("parallel leaf never executed")).collect()
}

/// Binary fork-join over the leaf list; each leaf writes its own slot.
fn fill_slots<T, B>(ranges: &[(usize, usize)], slots: &mut [Option<T>], body: &B)
where
    T: Send,
    B: Fn(usize, usize) -> T + Sync,
{
    match ranges.len() {
        0 => {}
        1 => slots[0] = Some(body(ranges[0].0, ranges[0].1)),
        n => {
            let mid = n / 2;
            let (r1, r2) = ranges.split_at(mid);
            let (s1, s2) = slots.split_at_mut(mid);
            crate::join(|| fill_slots(r1, s1, body), || fill_slots(r2, s2, body));
        }
    }
}

// --- core traits -------------------------------------------------------------

/// A parallel iterator: an indexed sequence whose sub-ranges can be driven
/// serially on any pool thread. `Sync` because terminal ops share `&self`
/// across workers.
pub trait ParallelIterator: Sized + Sync {
    /// Item type.
    type Item: Send;

    /// Number of items (for [`Filter`], the pre-filter upper bound used
    /// only to split work).
    fn par_len(&self) -> usize;

    /// Feeds items `lo..hi` (indices into the *base* sequence) to
    /// `consumer`, in index order. Disjoint ranges may be driven
    /// concurrently from different threads.
    fn drive<C>(&self, lo: usize, hi: usize, consumer: &mut C)
    where
        C: FnMut(Self::Item);

    /// Smallest worthwhile per-leaf item count (see [`with_min_len`]).
    ///
    /// [`with_min_len`]: ParallelIterator::with_min_len
    fn min_len_hint(&self) -> usize {
        1
    }

    /// Applies `f` to every item.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Keeps items where `f` is true.
    fn filter<F>(self, f: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Item) -> bool + Sync,
    {
        Filter { base: self, f }
    }

    /// `(index, item)` pairs (for chunked sources the index is the chunk
    /// index, as in rayon).
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { base: self }
    }

    /// Pairs with another indexed parallel iterator, truncating to the
    /// shorter length.
    fn zip<Z>(self, other: Z) -> Zip<Self, Z>
    where
        Self: IndexedParallelIterator,
        Z: IndexedParallelIterator,
    {
        Zip { a: self, b: other }
    }

    /// Requires at least `min` items per work unit — coarsens stealing
    /// granularity for cheap per-item bodies.
    fn with_min_len(self, min: usize) -> MinLen<Self> {
        MinLen { base: self, min }
    }

    /// Runs `f` on every item.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        leaf_map(self.par_len(), self.min_len_hint(), &|lo, hi| {
            self.drive(lo, hi, &mut |item| f(item));
        });
    }

    /// rayon-shaped fold: lazily describes per-leaf accumulators built
    /// with `fold_op` from `identity()`; consume with
    /// [`FoldedParIter::reduce`].
    fn fold<A, ID, F>(self, identity: ID, fold_op: F) -> FoldedParIter<Self, ID, F>
    where
        A: Send,
        ID: Fn() -> A + Sync,
        F: Fn(A, Self::Item) -> A + Sync,
    {
        FoldedParIter { base: self, identity, fold_op }
    }

    /// Collects into any `FromIterator` container, preserving index order.
    fn collect<C>(self) -> C
    where
        C: FromIterator<Self::Item>,
    {
        let parts = leaf_map(self.par_len(), self.min_len_hint(), &|lo, hi| {
            let mut buf = Vec::with_capacity(hi - lo);
            self.drive(lo, hi, &mut |item| buf.push(item));
            buf
        });
        parts.into_iter().flatten().collect()
    }

    /// Sums the items (`S: Sum<S>` combines the per-leaf partial sums).
    fn sum<S>(self) -> S
    where
        S: std::iter::Sum<Self::Item> + std::iter::Sum<S> + Send,
    {
        let parts = leaf_map(self.par_len(), self.min_len_hint(), &|lo, hi| {
            let mut buf = Vec::with_capacity(hi - lo);
            self.drive(lo, hi, &mut |item| buf.push(item));
            buf.into_iter().sum::<S>()
        });
        parts.into_iter().sum()
    }

    /// Counts the items (after any [`filter`]).
    ///
    /// [`filter`]: ParallelIterator::filter
    fn count(self) -> usize {
        leaf_map(self.par_len(), self.min_len_hint(), &|lo, hi| {
            let mut n = 0usize;
            self.drive(lo, hi, &mut |_| n += 1);
            n
        })
        .into_iter()
        .sum()
    }
}

/// A parallel iterator with O(1) random access to any item — what `zip`
/// needs to pair two sequences without buffering either.
pub trait IndexedParallelIterator: ParallelIterator {
    /// The item at `index`. Terminal drivers call this at most once per
    /// index (mutable sources hand out disjoint `&mut`s on that contract).
    fn item_at(&self, index: usize) -> Self::Item;
}

/// Conversion into a parallel iterator (ranges, `Vec`; parallel iterators
/// pass through unchanged in real rayon's blanket impl — the shim's `zip`
/// takes them directly).
pub trait IntoParallelIterator {
    /// The resulting iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type.
    type Item: Send;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

// --- slice sources -----------------------------------------------------------

/// Borrowing parallel iterator over `&[T]` (`par_iter`).
pub struct SliceIter<'a, T> {
    s: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;
    fn par_len(&self) -> usize {
        self.s.len()
    }
    fn drive<C: FnMut(Self::Item)>(&self, lo: usize, hi: usize, consumer: &mut C) {
        for item in &self.s[lo..hi] {
            consumer(item);
        }
    }
}

impl<T: Sync> IndexedParallelIterator for SliceIter<'_, T> {
    fn item_at(&self, index: usize) -> Self::Item {
        &self.s[index]
    }
}

/// Parallel iterator over non-overlapping sub-slices (`par_chunks`).
pub struct SliceChunks<'a, T> {
    s: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for SliceChunks<'a, T> {
    type Item = &'a [T];
    fn par_len(&self) -> usize {
        self.s.len().div_ceil(self.size)
    }
    fn drive<C: FnMut(Self::Item)>(&self, lo: usize, hi: usize, consumer: &mut C) {
        for i in lo..hi {
            consumer(self.item_at(i));
        }
    }
}

impl<T: Sync> IndexedParallelIterator for SliceChunks<'_, T> {
    fn item_at(&self, index: usize) -> Self::Item {
        let start = index * self.size;
        &self.s[start..(start + self.size).min(self.s.len())]
    }
}

/// Mutable parallel iterator over `&mut [T]` (`par_iter_mut`). Stored as a
/// raw base pointer so disjoint index ranges can be driven from different
/// threads; the leaf driver guarantees disjointness.
pub struct SliceIterMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Send for SliceIterMut<'_, T> {}
unsafe impl<T: Send> Sync for SliceIterMut<'_, T> {}

impl<'a, T: Send> ParallelIterator for SliceIterMut<'a, T> {
    type Item = &'a mut T;
    fn par_len(&self) -> usize {
        self.len
    }
    fn drive<C: FnMut(Self::Item)>(&self, lo: usize, hi: usize, consumer: &mut C) {
        for i in lo..hi {
            consumer(self.item_at(i));
        }
    }
}

impl<T: Send> IndexedParallelIterator for SliceIterMut<'_, T> {
    // Sound per the `item_at` contract: each index is claimed by exactly
    // one leaf range, so the `&mut`s handed out never alias.
    #[allow(clippy::mut_from_ref)]
    fn item_at(&self, index: usize) -> Self::Item {
        assert!(index < self.len);
        unsafe { &mut *self.ptr.add(index) }
    }
}

/// Mutable parallel iterator over non-overlapping sub-slices
/// (`par_chunks_mut`) — the GEMM row-band workhorse.
pub struct SliceChunksMut<'a, T> {
    ptr: *mut T,
    len: usize,
    size: usize,
    _marker: PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send> Send for SliceChunksMut<'_, T> {}
unsafe impl<T: Send> Sync for SliceChunksMut<'_, T> {}

impl<'a, T: Send> ParallelIterator for SliceChunksMut<'a, T> {
    type Item = &'a mut [T];
    fn par_len(&self) -> usize {
        self.len.div_ceil(self.size)
    }
    fn drive<C: FnMut(Self::Item)>(&self, lo: usize, hi: usize, consumer: &mut C) {
        for i in lo..hi {
            consumer(self.item_at(i));
        }
    }
}

impl<T: Send> IndexedParallelIterator for SliceChunksMut<'_, T> {
    // Sound per the `item_at` contract (disjoint chunks, each claimed by
    // exactly one leaf).
    #[allow(clippy::mut_from_ref)]
    fn item_at(&self, index: usize) -> Self::Item {
        let start = index * self.size;
        assert!(start < self.len);
        let n = self.size.min(self.len - start);
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(start), n) }
    }
}

/// `par_iter`/`par_chunks` on slices (and `Vec` via deref).
pub trait ParallelSliceExt<T: Sync> {
    /// Parallel shared iterator.
    fn par_iter(&self) -> SliceIter<'_, T>;
    /// Parallel iterator over `size`-item chunks (last may be shorter).
    fn par_chunks(&self, size: usize) -> SliceChunks<'_, T>;
}

impl<T: Sync> ParallelSliceExt<T> for [T] {
    fn par_iter(&self) -> SliceIter<'_, T> {
        SliceIter { s: self }
    }
    fn par_chunks(&self, size: usize) -> SliceChunks<'_, T> {
        assert!(size != 0, "chunk size must be non-zero");
        SliceChunks { s: self, size }
    }
}

/// `par_iter_mut`/`par_chunks_mut` on slices (and `Vec` via deref).
pub trait ParallelSliceMutExt<T: Send> {
    /// Parallel exclusive iterator.
    fn par_iter_mut(&mut self) -> SliceIterMut<'_, T>;
    /// Parallel iterator over disjoint mutable `size`-item chunks.
    fn par_chunks_mut(&mut self, size: usize) -> SliceChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMutExt<T> for [T] {
    fn par_iter_mut(&mut self) -> SliceIterMut<'_, T> {
        SliceIterMut { ptr: self.as_mut_ptr(), len: self.len(), _marker: PhantomData }
    }
    fn par_chunks_mut(&mut self, size: usize) -> SliceChunksMut<'_, T> {
        assert!(size != 0, "chunk size must be non-zero");
        SliceChunksMut { ptr: self.as_mut_ptr(), len: self.len(), size, _marker: PhantomData }
    }
}

// --- range / vec sources -----------------------------------------------------

/// Parallel iterator over `Range<usize>`.
pub struct RangePar {
    start: usize,
    len: usize,
}

impl ParallelIterator for RangePar {
    type Item = usize;
    fn par_len(&self) -> usize {
        self.len
    }
    fn drive<C: FnMut(Self::Item)>(&self, lo: usize, hi: usize, consumer: &mut C) {
        for i in lo..hi {
            consumer(self.start + i);
        }
    }
}

impl IndexedParallelIterator for RangePar {
    fn item_at(&self, index: usize) -> Self::Item {
        self.start + index
    }
}

impl IntoParallelIterator for Range<usize> {
    type Iter = RangePar;
    type Item = usize;
    fn into_par_iter(self) -> RangePar {
        RangePar { start: self.start, len: self.end.saturating_sub(self.start) }
    }
}

/// Owning parallel iterator over a `Vec` (`vec.into_par_iter()`). Items
/// are moved out by raw read — the leaf driver consumes each index exactly
/// once; a panic mid-drive leaks the unconsumed items (safe, like rayon
/// aborting a consumer).
pub struct VecPar<T> {
    items: std::mem::ManuallyDrop<Vec<T>>,
}

unsafe impl<T: Send> Send for VecPar<T> {}
unsafe impl<T: Send> Sync for VecPar<T> {}

impl<T> Drop for VecPar<T> {
    fn drop(&mut self) {
        // Free the buffer without double-dropping moved-out items.
        unsafe {
            self.items.set_len(0);
            std::mem::ManuallyDrop::drop(&mut self.items);
        }
    }
}

impl<T: Send> ParallelIterator for VecPar<T> {
    type Item = T;
    fn par_len(&self) -> usize {
        self.items.len()
    }
    fn drive<C: FnMut(Self::Item)>(&self, lo: usize, hi: usize, consumer: &mut C) {
        for i in lo..hi {
            consumer(unsafe { std::ptr::read(self.items.as_ptr().add(i)) });
        }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = VecPar<T>;
    type Item = T;
    fn into_par_iter(self) -> VecPar<T> {
        VecPar { items: std::mem::ManuallyDrop::new(self) }
    }
}

// --- adapters ----------------------------------------------------------------

/// See [`ParallelIterator::map`].
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, R, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync,
{
    type Item = R;
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn drive<C: FnMut(Self::Item)>(&self, lo: usize, hi: usize, consumer: &mut C) {
        let f = &self.f;
        self.base.drive(lo, hi, &mut |item| consumer(f(item)));
    }
    fn min_len_hint(&self) -> usize {
        self.base.min_len_hint()
    }
}

impl<P, R, F> IndexedParallelIterator for Map<P, F>
where
    P: IndexedParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync,
{
    fn item_at(&self, index: usize) -> Self::Item {
        (self.f)(self.base.item_at(index))
    }
}

/// See [`ParallelIterator::filter`].
pub struct Filter<P, F> {
    base: P,
    f: F,
}

impl<P, F> ParallelIterator for Filter<P, F>
where
    P: ParallelIterator,
    F: Fn(&P::Item) -> bool + Sync,
{
    type Item = P::Item;
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn drive<C: FnMut(Self::Item)>(&self, lo: usize, hi: usize, consumer: &mut C) {
        let f = &self.f;
        self.base.drive(lo, hi, &mut |item| {
            if f(&item) {
                consumer(item);
            }
        });
    }
    fn min_len_hint(&self) -> usize {
        self.base.min_len_hint()
    }
}

/// See [`ParallelIterator::enumerate`].
pub struct Enumerate<P> {
    base: P,
}

impl<P: ParallelIterator> ParallelIterator for Enumerate<P> {
    type Item = (usize, P::Item);
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn drive<C: FnMut(Self::Item)>(&self, lo: usize, hi: usize, consumer: &mut C) {
        let mut index = lo;
        self.base.drive(lo, hi, &mut |item| {
            consumer((index, item));
            index += 1;
        });
    }
    fn min_len_hint(&self) -> usize {
        self.base.min_len_hint()
    }
}

impl<P: IndexedParallelIterator> IndexedParallelIterator for Enumerate<P> {
    fn item_at(&self, index: usize) -> Self::Item {
        (index, self.base.item_at(index))
    }
}

/// See [`ParallelIterator::zip`].
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A, B> ParallelIterator for Zip<A, B>
where
    A: IndexedParallelIterator,
    B: IndexedParallelIterator,
{
    type Item = (A::Item, B::Item);
    fn par_len(&self) -> usize {
        self.a.par_len().min(self.b.par_len())
    }
    fn drive<C: FnMut(Self::Item)>(&self, lo: usize, hi: usize, consumer: &mut C) {
        for i in lo..hi {
            consumer((self.a.item_at(i), self.b.item_at(i)));
        }
    }
    fn min_len_hint(&self) -> usize {
        self.a.min_len_hint().max(self.b.min_len_hint())
    }
}

impl<A, B> IndexedParallelIterator for Zip<A, B>
where
    A: IndexedParallelIterator,
    B: IndexedParallelIterator,
{
    fn item_at(&self, index: usize) -> Self::Item {
        (self.a.item_at(index), self.b.item_at(index))
    }
}

/// See [`ParallelIterator::with_min_len`].
pub struct MinLen<P> {
    base: P,
    min: usize,
}

impl<P: ParallelIterator> ParallelIterator for MinLen<P> {
    type Item = P::Item;
    fn par_len(&self) -> usize {
        self.base.par_len()
    }
    fn drive<C: FnMut(Self::Item)>(&self, lo: usize, hi: usize, consumer: &mut C) {
        self.base.drive(lo, hi, consumer);
    }
    fn min_len_hint(&self) -> usize {
        self.base.min_len_hint().max(self.min)
    }
}

impl<P: IndexedParallelIterator> IndexedParallelIterator for MinLen<P> {
    fn item_at(&self, index: usize) -> Self::Item {
        self.base.item_at(index)
    }
}

// --- fold / reduce -----------------------------------------------------------

/// Lazy result of [`ParallelIterator::fold`]: per-leaf accumulators,
/// realised by [`reduce`](FoldedParIter::reduce).
pub struct FoldedParIter<P, ID, F> {
    base: P,
    identity: ID,
    fold_op: F,
}

impl<A, P, ID, F> FoldedParIter<P, ID, F>
where
    A: Send,
    P: ParallelIterator,
    ID: Fn() -> A + Sync,
    F: Fn(A, P::Item) -> A + Sync,
{
    /// Folds every leaf serially (index order, one accumulator per leaf)
    /// and combines the leaf accumulators with `op` **in leaf order** —
    /// deterministic for a fixed pool size. Serial pools produce exactly
    /// one accumulator and never invoke `op`; an empty input returns
    /// `identity()`.
    pub fn reduce<ID2, OP>(self, identity: ID2, op: OP) -> A
    where
        ID2: Fn() -> A + Sync,
        OP: Fn(A, A) -> A + Sync,
    {
        let accs = leaf_map(self.base.par_len(), self.base.min_len_hint(), &|lo, hi| {
            let mut acc = Some((self.identity)());
            self.base.drive(lo, hi, &mut |item| {
                let a = acc.take().expect("fold accumulator in use");
                acc = Some((self.fold_op)(a, item));
            });
            acc.expect("fold accumulator missing")
        });
        accs.into_iter().reduce(op).unwrap_or_else(identity)
    }
}
