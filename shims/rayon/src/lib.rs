//! Offline **serial** shim for the `rayon` API subset used by this
//! workspace. The container exposes a single hardware thread, so every
//! `par_*` combinator maps to the equivalent serial iterator with rayon's
//! method signatures (`fold(identity_fn, op)`, `reduce(identity_fn, op)`,
//! …). Swapping the real rayon back in requires no call-site changes.

/// Everything call sites need: extension traits and [`ParIter`].
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter, ParallelSliceExt, ParallelSliceMutExt};
}

/// Serial stand-in for a rayon parallel iterator: wraps a std iterator and
/// offers rayon-shaped combinators.
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    /// `(index, item)` pairs.
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    /// Applies `f` to every item.
    pub fn map<U, F: FnMut(I::Item) -> U>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    /// Keeps items where `f` is true.
    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> ParIter<std::iter::Filter<I, F>> {
        ParIter(self.0.filter(f))
    }

    /// Pairs with another (into-)parallel iterator.
    pub fn zip<J: IntoParallelIterator>(self, other: J) -> ParIter<std::iter::Zip<I, J::Iter>> {
        ParIter(self.0.zip(other.into_par_iter().0))
    }

    /// Runs `f` on every item.
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// rayon-shaped fold: produces a (single-element) iterator of per-thread
    /// accumulators — serially, exactly one.
    pub fn fold<A, ID, F>(self, identity: ID, fold_op: F) -> ParIter<std::iter::Once<A>>
    where
        ID: Fn() -> A,
        F: FnMut(A, I::Item) -> A,
    {
        ParIter(std::iter::once(self.0.fold(identity(), fold_op)))
    }

    /// rayon-shaped reduce: folds all items with `op`, starting from
    /// `identity()` when empty.
    pub fn reduce<ID, F>(self, identity: ID, op: F) -> I::Item
    where
        ID: Fn() -> I::Item,
        F: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.0.reduce(op).unwrap_or_else(identity)
    }

    /// Collects into any `FromIterator` container.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// Sums the items.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// Counts the items.
    pub fn count(self) -> usize {
        self.0.count()
    }

    /// Hint accepted for API compatibility; no-op serially.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }
}

impl<I: Iterator> IntoIterator for ParIter<I> {
    type Item = I::Item;
    type IntoIter = I;
    fn into_iter(self) -> I {
        self.0
    }
}

/// Conversion into a [`ParIter`]; blanket-implemented for every
/// `IntoIterator` (ranges, `Vec`, adaptors, and `ParIter` itself).
pub trait IntoParallelIterator {
    /// The underlying serial iterator.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type.
    type Item;
    /// Wraps into the rayon-shaped iterator.
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<T: IntoIterator> IntoParallelIterator for T {
    type Iter = T::IntoIter;
    type Item = T::Item;
    fn into_par_iter(self) -> ParIter<T::IntoIter> {
        ParIter(self.into_iter())
    }
}

/// `par_iter`/`par_chunks` on slices (and `Vec` via deref).
pub trait ParallelSliceExt<T> {
    /// Serial stand-in for `rayon`'s `par_iter`.
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;
    /// Serial stand-in for `rayon`'s `par_chunks`.
    fn par_chunks(&self, size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
}

impl<T> ParallelSliceExt<T> for [T] {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
        ParIter(self.iter())
    }
    fn par_chunks(&self, size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter(self.chunks(size))
    }
}

/// `par_iter_mut`/`par_chunks_mut` on slices (and `Vec` via deref).
pub trait ParallelSliceMutExt<T> {
    /// Serial stand-in for `rayon`'s `par_iter_mut`.
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>>;
    /// Serial stand-in for `rayon`'s `par_chunks_mut`.
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
}

impl<T> ParallelSliceMutExt<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>> {
        ParIter(self.iter_mut())
    }
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter(self.chunks_mut(size))
    }
}

/// Serial `rayon::join`: runs `a` then `b`.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// The shim is always single-threaded.
pub fn current_num_threads() -> usize {
    1
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_mut_matches_serial() {
        let mut v = vec![0u32; 10];
        v.par_chunks_mut(3).enumerate().for_each(|(i, c)| {
            for x in c {
                *x = i as u32;
            }
        });
        assert_eq!(v, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn zip_fold_reduce_shapes() {
        let a = [1u64, 2, 3, 4];
        let b = [10u64, 20, 30, 40];
        let total = a
            .par_iter()
            .zip(b.par_iter())
            .map(|(&x, &y)| x * y)
            .fold(|| 0u64, |acc, v| acc + v)
            .reduce(|| 0u64, |x, y| x + y);
        assert_eq!(total, 10 + 40 + 90 + 160);
    }

    #[test]
    fn into_par_iter_on_ranges_and_vecs() {
        let s: usize = (0..10usize).into_par_iter().map(|i| i * i).sum();
        assert_eq!(s, 285);
        let v: Vec<i32> = vec![3, 1, 2].into_par_iter().collect();
        assert_eq!(v, [3, 1, 2]);
    }
}
