//! Offline shim for the `rayon` API subset used by this workspace, backed
//! by a **real fixed-size work-stealing thread pool** (see [`pool`] module
//! docs for the architecture). The global pool is sized by the
//! `SEQREC_THREADS` environment variable, falling back to the machine's
//! available parallelism; at 1 thread everything runs inline on the
//! calling thread — the guaranteed serial mode whose results are
//! bit-identical to the serial shim this replaced.
//!
//! Determinism contract: parallel `fold`/`reduce`/`collect`/`sum` combine
//! per-leaf results in a fixed leaf order, and the leaf partition depends
//! only on input length, pool size and `min_len` — never on stealing
//! order. Results are therefore reproducible run-to-run for a fixed
//! `SEQREC_THREADS`, and exactly serial at 1 thread.
//!
//! Swapping the genuine rayon back in (delete the `[patch.crates-io]`
//! entry on a networked machine) requires no call-site changes: every
//! method here mirrors rayon's name, shape and bounds for the surface the
//! workspace uses.

mod iter;
mod pool;

pub use iter::{
    Enumerate, Filter, FoldedParIter, IndexedParallelIterator, IntoParallelIterator, Map, MinLen,
    ParallelIterator, ParallelSliceExt, ParallelSliceMutExt, RangePar, SliceChunks, SliceChunksMut,
    SliceIter, SliceIterMut, VecPar, Zip,
};
#[doc(hidden)]
pub use pool::pin_global_pool_size;
pub use pool::{
    current_num_threads, join, scope, Scope, ThreadPool, ThreadPoolBuildError, ThreadPoolBuilder,
};

/// Everything call sites need: the iterator traits and slice extensions.
pub mod prelude {
    pub use crate::iter::{
        IndexedParallelIterator, IntoParallelIterator, ParallelIterator, ParallelSliceExt,
        ParallelSliceMutExt,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    /// A 4-worker pool shared by the multithreading tests (explicit pools
    /// keep these tests independent of the global pool's size, which on a
    /// 1-core container is serial).
    fn pool4() -> super::ThreadPool {
        super::ThreadPoolBuilder::new().num_threads(4).build().expect("pool builds")
    }

    #[test]
    fn par_chunks_mut_matches_serial() {
        let mut v = vec![0u32; 10];
        v.par_chunks_mut(3).enumerate().for_each(|(i, c)| {
            for x in c {
                *x = i as u32;
            }
        });
        assert_eq!(v, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn zip_fold_reduce_shapes() {
        let a = [1u64, 2, 3, 4];
        let b = [10u64, 20, 30, 40];
        let total = a
            .par_iter()
            .zip(b.par_iter())
            .map(|(&x, &y)| x * y)
            .fold(|| 0u64, |acc, v| acc + v)
            .reduce(|| 0u64, |x, y| x + y);
        assert_eq!(total, 10 + 40 + 90 + 160);
    }

    #[test]
    fn into_par_iter_on_ranges_and_vecs() {
        let s: usize = (0..10usize).into_par_iter().map(|i| i * i).sum();
        assert_eq!(s, 285);
        let v: Vec<i32> = vec![3, 1, 2].into_par_iter().collect();
        assert_eq!(v, [3, 1, 2]);
    }

    #[test]
    fn install_runs_on_a_named_worker_and_sizes_the_pool() {
        let pool = pool4();
        let (name, threads) = pool.install(|| {
            (std::thread::current().name().map(str::to_string), super::current_num_threads())
        });
        assert_eq!(threads, 4);
        let name = name.expect("pool workers are named");
        assert!(name.starts_with("seqrec-worker-"), "unexpected worker name {name}");
    }

    #[test]
    fn join_really_uses_multiple_threads() {
        // With 4 workers and enough nested fan-out, at least two distinct
        // OS threads must participate.
        use std::sync::Mutex;
        let seen: Mutex<Vec<std::thread::ThreadId>> = Mutex::new(Vec::new());
        let record = || {
            let id = std::thread::current().id();
            let mut g = seen.lock().unwrap();
            if !g.contains(&id) {
                g.push(id);
            }
            drop(g);
            // Give thieves a window to actually steal.
            std::thread::sleep(std::time::Duration::from_millis(2));
        };
        pool4().install(|| {
            super::join(|| super::join(record, record), || super::join(record, record));
        });
        assert!(seen.lock().unwrap().len() >= 2, "all joined work ran on one thread");
    }

    #[test]
    fn parallel_results_match_serial_on_a_real_pool() {
        let data: Vec<u64> = (0..10_000).collect();
        let serial: u64 = data.iter().map(|x| x * 3 + 1).sum();
        let par: u64 = pool4().install(|| data.par_iter().map(|x| x * 3 + 1).sum());
        assert_eq!(par, serial);

        let par_count = pool4().install(|| data.par_iter().filter(|x| **x % 7 == 0).count());
        assert_eq!(par_count, data.iter().filter(|x| **x % 7 == 0).count());

        let collected: Vec<u64> = pool4().install(|| data.par_iter().map(|x| x + 1).collect());
        assert_eq!(collected, data.iter().map(|x| x + 1).collect::<Vec<_>>());
    }

    #[test]
    fn fold_reduce_is_deterministic_for_a_fixed_pool_size() {
        // f32 summation order matters; the leaf partition (not stealing
        // order) fixes it, so repeated runs must agree bit-for-bit.
        let data: Vec<f32> = (0..4_321).map(|i| (i as f32).sin()).collect();
        let pool = pool4();
        let run = || {
            pool.install(|| {
                data.par_iter().fold(|| 0.0f32, |acc, &x| acc + x).reduce(|| 0.0f32, |a, b| a + b)
            })
        };
        let first = run();
        for _ in 0..5 {
            assert_eq!(first.to_bits(), run().to_bits());
        }
    }

    #[test]
    fn join_propagates_panics_from_either_side() {
        let pool = pool4();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| super::join(|| 1, || panic!("right side")));
        }));
        assert!(caught.is_err());
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| super::join(|| panic!("left side"), || 2));
        }));
        assert!(caught.is_err());
        // The pool survives panics: later work still completes.
        assert_eq!(pool.install(|| super::join(|| 1, || 2)), (1, 2));
    }

    #[test]
    fn scope_waits_for_spawns_that_borrow_the_stack() {
        let mut results = vec![0usize; 8];
        pool4().install(|| {
            super::scope(|s| {
                for (i, slot) in results.iter_mut().enumerate() {
                    s.spawn(move |_| *slot = i * i);
                }
            });
        });
        assert_eq!(results, [0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn current_num_threads_reports_the_ambient_pool() {
        let inside = pool4().install(super::current_num_threads);
        assert_eq!(inside, 4);
        // Outside any explicit pool we get the global pool's size, which
        // is at least 1.
        assert!(super::current_num_threads() >= 1);
    }
}
