//! The fixed-size work-stealing thread pool behind the shim.
//!
//! Architecture (a deliberately small cousin of rayon-core):
//!
//! * A [`Registry`] owns one LIFO deque per worker plus a shared FIFO
//!   injector for jobs arriving from threads outside the pool. Workers pop
//!   their own deque from the back (depth-first, cache-friendly) and steal
//!   from other deques / the injector from the front (breadth-first, which
//!   takes the *oldest* — largest — stolen task).
//! * Jobs are type-erased [`JobRef`]s: a raw pointer to a [`StackJob`]
//!   living in the stack frame of the thread that called [`join`] (that
//!   frame never returns before the job completes, so the pointer stays
//!   valid), or to a heap job spawned into a [`Scope`].
//! * Blocking is cooperative: a thread waiting in [`join`], [`scope`] or a
//!   parallel-iterator barrier *helps* — it keeps executing queued jobs
//!   until the one it waits for completes. Idle workers sleep on a condvar
//!   with a timeout fallback, woken by every push.
//! * The global pool is sized by `SEQREC_THREADS`, else the machine's
//!   [`std::thread::available_parallelism`]. At 1 thread no workers are
//!   spawned at all and `join` degenerates to `(a(), b())` inline — the
//!   guaranteed serial mode that keeps seeded single-threaded runs
//!   bit-identical to the old serial shim.
//!
//! Panics inside jobs are caught where they happen and resumed on the
//! thread that waits for the result, matching rayon's contract.

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panicking job must not silence the rest of the pool.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

// --- jobs --------------------------------------------------------------------

/// Type-erased pointer to a job. The queueing site guarantees the pointee
/// outlives execution (stack jobs block in their frame; heap jobs own
/// their allocation).
#[derive(Clone, Copy)]
struct JobRef {
    data: *const (),
    exec: unsafe fn(*const ()),
}

// Jobs move between threads by construction; the pointee synchronises via
// its completion flag.
unsafe impl Send for JobRef {}

impl JobRef {
    unsafe fn execute(self) {
        (self.exec)(self.data);
    }
}

/// A `join` job whose closure and result live on the creating thread's
/// stack. The completion flag (`Release` store / `Acquire` load) orders
/// the result write before the creator reads it.
struct StackJob<F, R> {
    func: std::cell::UnsafeCell<Option<F>>,
    result: std::cell::UnsafeCell<Option<std::thread::Result<R>>>,
    done: AtomicBool,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    fn new(f: F) -> Self {
        StackJob {
            func: std::cell::UnsafeCell::new(Some(f)),
            result: std::cell::UnsafeCell::new(None),
            done: AtomicBool::new(false),
        }
    }

    unsafe fn as_job_ref(&self) -> JobRef {
        JobRef { data: std::ptr::from_ref(self).cast(), exec: Self::execute_erased }
    }

    unsafe fn execute_erased(ptr: *const ()) {
        let job = &*ptr.cast::<Self>();
        let f = (*job.func.get()).take().expect("stack job executed twice");
        let res = panic::catch_unwind(AssertUnwindSafe(f));
        *job.result.get() = Some(res);
        job.done.store(true, Ordering::Release);
    }

    fn done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    fn take_result(&self) -> std::thread::Result<R> {
        unsafe { (*self.result.get()).take().expect("stack job result missing") }
    }
}

/// A heap-allocated `Scope::spawn` job. Completion bookkeeping (panic
/// capture + outstanding counter) goes through the scope pointer, which
/// stays valid because `scope` blocks until the counter drains.
struct HeapJob {
    task: Option<Box<dyn FnOnce() + Send>>,
    scope: *const (),
    complete: unsafe fn(*const (), Option<Box<dyn Any + Send>>),
}

unsafe fn execute_heap(ptr: *const ()) {
    let mut job = Box::from_raw(ptr.cast::<HeapJob>().cast_mut());
    let task = job.task.take().expect("heap job executed twice");
    let res = panic::catch_unwind(AssertUnwindSafe(task));
    (job.complete)(job.scope, res.err());
}

// --- registry ----------------------------------------------------------------

/// One pool: worker deques, the injector, and the sleep protocol.
struct Registry {
    deques: Vec<Mutex<VecDeque<JobRef>>>,
    injector: Mutex<VecDeque<JobRef>>,
    sleep_mutex: Mutex<()>,
    sleep_cvar: Condvar,
    /// Jobs queued but not yet claimed. Checked under `sleep_mutex` before
    /// sleeping so a push between "no work found" and "wait" cannot be
    /// lost; the timeout below is a belt-and-braces fallback.
    pending: AtomicUsize,
    n_threads: usize,
}

thread_local! {
    /// `(registry, worker index)` for pool worker threads; `None` on every
    /// other thread (main, test harness, foreign pools' workers).
    static WORKER: RefCell<Option<(Arc<Registry>, usize)>> = const { RefCell::new(None) };
}

impl Registry {
    /// Builds a registry reporting `n_threads` and actually spawning
    /// `spawn` OS workers (0 for the serial global pool).
    fn new(n_threads: usize, spawn: usize, name_prefix: &str) -> Arc<Registry> {
        let reg = Arc::new(Registry {
            deques: (0..spawn).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            sleep_mutex: Mutex::new(()),
            sleep_cvar: Condvar::new(),
            pending: AtomicUsize::new(0),
            n_threads,
        });
        for i in 0..spawn {
            let r = Arc::clone(&reg);
            std::thread::Builder::new()
                .name(format!("{name_prefix}-{i}"))
                .spawn(move || worker_loop(&r, i))
                .expect("cannot spawn pool worker thread");
        }
        reg
    }

    /// The calling thread's worker index *in this registry*, if any.
    fn worker_index_here(&self) -> Option<usize> {
        WORKER.with(|w| {
            w.borrow().as_ref().and_then(|(r, i)| std::ptr::eq(Arc::as_ptr(r), self).then_some(*i))
        })
    }

    /// Queues a job: onto the caller's own deque when the caller is one of
    /// this pool's workers, else onto the injector. Wakes sleepers.
    fn push(&self, job: JobRef) {
        match self.worker_index_here() {
            Some(i) => lock(&self.deques[i]).push_back(job),
            None => lock(&self.injector).push_back(job),
        }
        self.pending.fetch_add(1, Ordering::Release);
        if !self.deques.is_empty() {
            let _g = lock(&self.sleep_mutex);
            self.sleep_cvar.notify_all();
        }
    }

    /// Claims one job: own deque back (LIFO), then injector front, then
    /// steals from the other deques' fronts (FIFO).
    fn find_work(&self, me: Option<usize>) -> Option<JobRef> {
        if let Some(i) = me {
            if let Some(j) = lock(&self.deques[i]).pop_back() {
                self.pending.fetch_sub(1, Ordering::AcqRel);
                return Some(j);
            }
        }
        if let Some(j) = lock(&self.injector).pop_front() {
            self.pending.fetch_sub(1, Ordering::AcqRel);
            return Some(j);
        }
        let n = self.deques.len();
        let start = me.map_or(0, |i| i + 1);
        for k in 0..n {
            let idx = (start + k) % n;
            if me == Some(idx) {
                continue;
            }
            if let Some(j) = lock(&self.deques[idx]).pop_front() {
                self.pending.fetch_sub(1, Ordering::AcqRel);
                return Some(j);
            }
        }
        None
    }

    /// Executes queued jobs until `done()` turns true (cooperative
    /// blocking: never parks while the pool has runnable work).
    fn help_until(&self, done: &dyn Fn() -> bool) {
        let me = self.worker_index_here();
        let mut spins = 0u32;
        while !done() {
            if let Some(job) = self.find_work(me) {
                unsafe { job.execute() };
                spins = 0;
            } else if spins < 64 {
                spins += 1;
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

fn worker_loop(reg: &Arc<Registry>, index: usize) {
    WORKER.with(|w| *w.borrow_mut() = Some((Arc::clone(reg), index)));
    loop {
        if let Some(job) = reg.find_work(Some(index)) {
            unsafe { job.execute() };
        } else {
            let g = lock(&reg.sleep_mutex);
            if reg.pending.load(Ordering::Acquire) == 0 {
                // Timeout guards against any lost wakeup; pushes normally
                // notify under the same mutex, so this rarely expires.
                drop(self_wait(&reg.sleep_cvar, g));
            }
        }
    }
}

fn self_wait<'a>(cvar: &Condvar, g: MutexGuard<'a, ()>) -> MutexGuard<'a, ()> {
    match cvar.wait_timeout(g, Duration::from_millis(10)) {
        Ok((g, _)) => g,
        Err(e) => e.into_inner().0,
    }
}

// --- global pool -------------------------------------------------------------

static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();
static PINNED: AtomicUsize = AtomicUsize::new(0);

fn resolve_global_threads() -> usize {
    let pinned = PINNED.load(Ordering::Acquire);
    if pinned > 0 {
        return pinned;
    }
    if let Ok(v) = std::env::var("SEQREC_THREADS") {
        match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => return n,
            _ => eprintln!("ignoring invalid SEQREC_THREADS={v:?} (want a positive integer)"),
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

fn global_registry() -> Arc<Registry> {
    Arc::clone(GLOBAL.get_or_init(|| {
        let n = resolve_global_threads();
        // At n == 1 spawn no workers at all: everything runs inline on the
        // calling thread, guaranteeing bit-identity with a serial build.
        Registry::new(n, if n > 1 { n } else { 0 }, "seqrec-worker")
    }))
}

/// Forces the global pool to `n` threads. Must run before the first
/// parallel call in the process; panics if the pool already initialised at
/// a different size. Test-only knob (golden fixtures pin 1), hidden from
/// the public API surface the production code mirrors from real rayon.
#[doc(hidden)]
pub fn pin_global_pool_size(n: usize) {
    let n = n.max(1);
    PINNED.store(n, Ordering::Release);
    let reg = global_registry();
    assert!(
        reg.n_threads == n,
        "global thread pool already initialised with {} threads (wanted {n}); \
         pin the size before any parallel work runs",
        reg.n_threads
    );
}

/// The registry parallel work on this thread runs against: the owning
/// pool for worker threads, the global pool for everyone else.
fn current_registry() -> Arc<Registry> {
    WORKER.with(|w| w.borrow().as_ref().map(|(r, _)| Arc::clone(r))).unwrap_or_else(global_registry)
}

/// Number of threads in the current thread's pool (the global pool unless
/// called from inside [`ThreadPool::install`]). 1 means strictly serial.
pub fn current_num_threads() -> usize {
    current_registry().n_threads
}

// --- join --------------------------------------------------------------------

/// Potentially-parallel `(a(), b())`: `b` is queued for stealing while the
/// calling thread runs `a`, then helps execute queued work until `b`
/// completes. At 1 thread this is exactly serial `(a(), b())`.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let reg = current_registry();
    if reg.n_threads <= 1 {
        let ra = oper_a();
        let rb = oper_b();
        return (ra, rb);
    }
    let job_b = StackJob::new(oper_b);
    reg.push(unsafe { job_b.as_job_ref() });
    let ra = panic::catch_unwind(AssertUnwindSafe(oper_a));
    reg.help_until(&|| job_b.done());
    let rb = job_b.take_result();
    match (ra, rb) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (Err(p), _) | (_, Err(p)) => panic::resume_unwind(p),
    }
}

// --- scope -------------------------------------------------------------------

/// A fork-join scope: spawned tasks may borrow from the enclosing frame
/// (`'scope`); [`scope`] does not return until all of them finish.
pub struct Scope<'scope> {
    registry: Arc<Registry>,
    outstanding: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    _marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Queues `f` on the pool. The closure may borrow `'scope` data; the
    /// enclosing [`scope`] call blocks until every spawn completes.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.outstanding.fetch_add(1, Ordering::AcqRel);
        let scope_ptr: *const Scope<'scope> = self;
        // Raw pointers are not Send; this one is — it targets the stack
        // frame `scope()` blocks in until every spawn completes.
        struct SendScopePtr<'s>(*const Scope<'s>);
        unsafe impl Send for SendScopePtr<'_> {}
        let p = SendScopePtr(scope_ptr);
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let p = p;
            f(unsafe { &*p.0 })
        });
        // Erase 'scope: the scope outlives the job because `scope()` only
        // returns once `outstanding` drains back to zero.
        let task: Box<dyn FnOnce() + Send + 'static> = unsafe {
            std::mem::transmute::<
                Box<dyn FnOnce() + Send + 'scope>,
                Box<dyn FnOnce() + Send + 'static>,
            >(task)
        };
        let job = Box::new(HeapJob {
            task: Some(task),
            scope: scope_ptr.cast(),
            complete: Self::complete_erased,
        });
        let job_ref = JobRef { data: Box::into_raw(job).cast_const().cast(), exec: execute_heap };
        self.registry.push(job_ref);
    }

    unsafe fn complete_erased(ptr: *const (), panic_payload: Option<Box<dyn Any + Send>>) {
        let scope = &*ptr.cast::<Scope<'scope>>();
        if let Some(p) = panic_payload {
            let mut slot = lock(&scope.panic);
            if slot.is_none() {
                *slot = Some(p);
            }
        }
        // Release-orders the panic store before the waiter's Acquire load.
        scope.outstanding.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Runs `f` with a [`Scope`] handle and waits (helping) for every spawned
/// task. The first panic — from `f` itself or any spawn — is resumed here.
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let registry = current_registry();
    let s = Scope {
        registry: Arc::clone(&registry),
        outstanding: AtomicUsize::new(0),
        panic: Mutex::new(None),
        _marker: PhantomData,
    };
    let res = panic::catch_unwind(AssertUnwindSafe(|| f(&s)));
    registry.help_until(&|| s.outstanding.load(Ordering::Acquire) == 0);
    let spawned_panic = lock(&s.panic).take();
    match res {
        Err(p) => panic::resume_unwind(p),
        Ok(r) => {
            if let Some(p) = spawned_panic {
                panic::resume_unwind(p);
            }
            r
        }
    }
}

// --- explicit pools ----------------------------------------------------------

/// Error building a [`ThreadPool`] (mirrors rayon's opaque error type;
/// construction here cannot actually fail short of OS thread exhaustion,
/// which panics instead).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for an explicit [`ThreadPool`] independent of the global one
/// (tests use it to force a multi-worker pool on any machine).
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// An empty builder (pool sized like the global default).
    pub fn new() -> Self {
        ThreadPoolBuilder { num_threads: 0 }
    }

    /// Sets the worker count (0 = the global default sizing).
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Spawns the pool.
    ///
    /// # Errors
    /// Never fails in this shim; the `Result` mirrors rayon's signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 { resolve_global_threads() } else { self.num_threads };
        // Explicit pools always spawn real workers, even at n == 1:
        // `install` runs its closure *on* a worker.
        Ok(ThreadPool { registry: Registry::new(n, n, "seqrec-worker") })
    }
}

/// An explicitly-constructed pool. Worker threads live for the process
/// lifetime (the shim never tears pools down; tests build a handful at
/// most).
pub struct ThreadPool {
    registry: Arc<Registry>,
}

impl ThreadPool {
    /// Runs `op` on one of this pool's workers and returns its result.
    /// Parallel calls inside `op` (`join`, `par_iter`, …) use this pool.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        let job = StackJob::new(op);
        lock(&self.registry.injector).push_back(unsafe { job.as_job_ref() });
        self.registry.pending.fetch_add(1, Ordering::Release);
        {
            let _g = lock(&self.registry.sleep_mutex);
            self.registry.sleep_cvar.notify_all();
        }
        // Deliberately do NOT help: `op` must run on a pool worker so that
        // nested parallel calls see this pool, not the caller's.
        while !job.done() {
            std::thread::yield_now();
        }
        match job.take_result() {
            Ok(r) => r,
            Err(p) => panic::resume_unwind(p),
        }
    }

    /// This pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.registry.n_threads
    }
}
