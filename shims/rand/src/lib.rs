//! Offline shim for the [`rand`](https://docs.rs/rand/0.8) API subset used by
//! this workspace: `RngCore`/`Rng`/`SeedableRng`, half-open and inclusive
//! `gen_range`, `gen::<f32/f64>()`, `gen_bool`, `seq::SliceRandom`
//! (`shuffle`/`choose`) and `distributions::{Distribution, Standard,
//! WeightedIndex}`. See `shims/README.md` for the rationale.

pub mod distributions;
pub mod seq;

/// Source of raw random bits.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A range that knows how to sample one value uniformly from itself.
pub trait SampleRange<T> {
    /// Draws one uniform sample; panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end - self.start) as u64;
                // Modulo sampling: bias is < span/2^64, irrelevant here.
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize);

macro_rules! signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}
signed_range!(i8, i16, i32, i64, isize);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let u: $t = crate::distributions::unit(rng);
                let v = self.start + (self.end - self.start) * u;
                // Guard against rounding up to the excluded endpoint.
                if v < self.end { v } else { self.start }
            }
        }
    )*};
}
float_range!(f32, f64);

/// Convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution
    /// (`f32`/`f64`: uniform in `[0, 1)`).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        distributions::unit::<f64, Self>(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Expands a `u64` into the full generator state (SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Lcg(7);
        for _ in 0..1000 {
            let a = r.gen_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = r.gen_range(1u32..=5);
            assert!((1..=5).contains(&b));
            let c = r.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&c));
            let d = r.gen_range(-50i64..50);
            assert!((-50..50).contains(&d));
        }
    }

    #[test]
    fn unit_floats_in_zero_one() {
        let mut r = Lcg(1);
        for _ in 0..1000 {
            let x: f32 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }
}
