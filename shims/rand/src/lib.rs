//! Offline shim for the [`rand`](https://docs.rs/rand/0.8) API subset used by
//! this workspace: `RngCore`/`Rng`/`SeedableRng`, half-open and inclusive
//! `gen_range`, `gen::<f32/f64>()`, `gen_bool`, `seq::SliceRandom`
//! (`shuffle`/`choose`) and `distributions::{Distribution, Standard,
//! WeightedIndex}`.
//!
//! Where it matters for reproducibility the implementations are
//! **bit-compatible with rand 0.8 / rand_core 0.6**, not merely API-shaped:
//!
//! * [`SeedableRng::seed_from_u64`] is rand_core 0.6's PCG32-based seed
//!   expansion, bit for bit, so `seed_from_u64(s)` constructs the same
//!   generator state as the registry crates;
//! * `gen::<f32>()`/`gen::<f64>()` use rand 0.8's `Standard` conversion
//!   (top 24 bits of a `next_u32` / top 53 bits of a `next_u64`);
//! * integer `gen_range` uses rand 0.8.5's widening-multiply rejection
//!   sampler (`sample_single`/`sample_single_inclusive`), consuming the
//!   same number of raw draws as the real crate;
//! * `gen_bool` is rand 0.8's `Bernoulli` comparison against `p·2⁶⁴`.
//!
//! Float `gen_range` and the `seq`/`WeightedIndex` helpers follow the same
//! algorithms as rand 0.8 but are not verified bit-exact against it — see
//! `shims/README.md` for the precise compatibility statement.

pub mod distributions;
pub mod seq;

/// Source of raw random bits.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits. The default derives them from
    /// [`RngCore::next_u64`]; generators with a natural 32-bit output
    /// (e.g. the ChaCha family) override this to consume one word, exactly
    /// as their `rand_core` implementations do.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// A range that knows how to sample one value uniformly from itself.
pub trait SampleRange<T> {
    /// Draws one uniform sample; panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// One widening-multiply rejection sample in `0..$range`, exactly as rand
/// 0.8.5's `sample_single` does it: small (≤16-bit) types compute the exact
/// rejection zone, wider types the cheaper shifted zone. Same zones → the
/// same draws are rejected → the same stream consumption as the real crate.
macro_rules! sample_span {
    ($rng:expr, $range:expr, $large:ty, $wide:ty, $next:ident, $small:expr) => {{
        let range: $large = $range;
        let zone = if $small {
            <$large>::MAX - (<$large>::MAX - range + 1) % range
        } else {
            (range << range.leading_zeros()).wrapping_sub(1)
        };
        loop {
            let v = $rng.$next() as $large;
            let m = (v as $wide) * (range as $wide);
            let hi = (m >> <$large>::BITS) as $large;
            let lo = m as $large;
            if lo <= zone {
                break hi;
            }
        }
    }};
}

/// rand 0.8.5's single-use uniform integer sampler. `$large` is the raw
/// sample width the real crate uses for `$ty` (`u32` for ≤32-bit types,
/// `u64` for 64-bit and `usize`), `$wide` the double width for the multiply,
/// and `$small` selects the exact-zone path (types ≤ 16 bits).
macro_rules! uniform_int_range {
    ($($ty:ty, $uty:ty, $large:ty, $wide:ty, $next:ident, $small:expr;)*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty gen_range");
                let range = self.end.wrapping_sub(self.start) as $uty as $large;
                let hi = sample_span!(rng, range, $large, $wide, $next, $small);
                self.start.wrapping_add(hi as $ty)
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi_bound) = self.into_inner();
                assert!(lo <= hi_bound, "empty gen_range");
                let range = (hi_bound.wrapping_sub(lo) as $uty as $large).wrapping_add(1);
                if range == 0 {
                    // Span covers the full `$large` domain: every raw draw
                    // is a valid sample (rand 0.8's `range == 0` branch).
                    return rng.$next() as $ty;
                }
                let hi = sample_span!(rng, range, $large, $wide, $next, $small);
                lo.wrapping_add(hi as $ty)
            }
        }
    )*};
}

uniform_int_range! {
    u8, u8, u32, u64, next_u32, true;
    u16, u16, u32, u64, next_u32, true;
    u32, u32, u32, u64, next_u32, false;
    u64, u64, u64, u128, next_u64, false;
    usize, usize, u64, u128, next_u64, false;
    i8, u8, u32, u64, next_u32, true;
    i16, u16, u32, u64, next_u32, true;
    i32, u32, u32, u64, next_u32, false;
    i64, u64, u64, u128, next_u64, false;
    isize, usize, u64, u128, next_u64, false;
}

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let u: $t = crate::distributions::unit(rng);
                let v = self.start + (self.end - self.start) * u;
                // Guard against rounding up to the excluded endpoint.
                if v < self.end { v } else { self.start }
            }
        }
    )*};
}
float_range!(f32, f64);

/// Convenience methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution
    /// (`f32`/`f64`: uniform in `[0, 1)`).
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        distributions::Distribution::sample(&distributions::Standard, self)
    }

    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (rand 0.8's `Bernoulli`: one `next_u64`
    /// compared against `p·2⁶⁴`; `p == 1.0` consumes nothing).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        if p == 1.0 {
            return true;
        }
        let scale = 2.0 * (1u64 << 63) as f64; // 2^64
        let p_int = (p * scale) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds, mirroring `rand_core` 0.6:
/// [`SeedableRng::from_seed`] is the primitive, and the provided
/// [`SeedableRng::seed_from_u64`] is rand_core's PCG32-based seed expansion
/// bit for bit — `seed_from_u64(s)` builds the same generator state here as
/// with the registry crates.
pub trait SeedableRng: Sized {
    /// Raw seed type (`[u8; 32]` for the ChaCha family).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into [`SeedableRng::Seed`] with rand_core 0.6's
    /// PCG32 generator (advance-then-output, XSH-RR output function) and
    /// calls [`SeedableRng::from_seed`].
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Lcg(7);
        for _ in 0..1000 {
            let a = r.gen_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = r.gen_range(1u32..=5);
            assert!((1..=5).contains(&b));
            let c = r.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&c));
            let d = r.gen_range(-50i64..50);
            assert!((-50..50).contains(&d));
            let e = r.gen_range(0u8..=255);
            let _ = e; // full u8 span must not panic
        }
    }

    #[test]
    fn unit_floats_in_zero_one() {
        let mut r = Lcg(1);
        for _ in 0..1000 {
            let x: f32 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = r.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_is_reasonably_uniform() {
        let mut r = Lcg(99);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[r.gen_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn gen_bool_edge_cases() {
        let mut r = Lcg(5);
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn seed_from_u64_matches_rand_core_expansion() {
        // rand_core 0.6 expands seed 0 through PCG32; first word below is
        // the documented/observable first 4 bytes of that expansion for
        // state 0 after one advance: state = INC, then XSH-RR output.
        struct CaptureSeed([u8; 8]);
        impl SeedableRng for CaptureSeed {
            type Seed = [u8; 8];
            fn from_seed(seed: [u8; 8]) -> Self {
                CaptureSeed(seed)
            }
        }
        let got = CaptureSeed::seed_from_u64(0).0;
        // Recompute independently (same algorithm, spelled differently).
        let mut state = 0u64;
        let mut want = [0u8; 8];
        for chunk in want.chunks_mut(4) {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(11634580027462260723);
            let x = ((((state >> 18) ^ state) >> 27) as u32).rotate_right((state >> 59) as u32);
            chunk.copy_from_slice(&x.to_le_bytes());
        }
        assert_eq!(got, want);
    }
}
