//! The `rand::distributions` subset: `Distribution`, `Standard`, and
//! `WeightedIndex` (used by the synthetic-data Zipf sampler).

use crate::RngCore;

/// Types that can produce samples of `T` from raw random bits.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a type; for floats, uniform in `[0, 1)`.
pub struct Standard;

/// Uniform float in `[0, 1)` built from the top mantissa-width bits,
/// bit-compatible with rand 0.8's `Standard`: an `f32` consumes one
/// `next_u32` (top 24 bits), an `f64` one `next_u64` (top 53 bits).
pub(crate) fn unit<T: Unit, R: RngCore + ?Sized>(rng: &mut R) -> T {
    T::sample_unit(rng)
}

/// Helper for mantissa-width unit-interval floats.
pub(crate) trait Unit {
    fn sample_unit<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Unit for f32 {
    fn sample_unit<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        ((rng.next_u32() >> 8) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Unit for f64 {
    fn sample_unit<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        unit(rng)
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        unit(rng)
    }
}

/// Error from [`WeightedIndex::new`] on empty/invalid weights.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeightedError;

impl core::fmt::Display for WeightedError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid weights for WeightedIndex")
    }
}

impl std::error::Error for WeightedError {}

/// Samples indices `0..n` proportionally to a weight vector.
#[derive(Debug, Clone)]
pub struct WeightedIndex<X> {
    cumulative: Vec<X>,
}

impl WeightedIndex<f64> {
    /// Builds the sampler; errors on an empty list, a negative or non-finite
    /// weight, or an all-zero total.
    pub fn new<I>(weights: I) -> Result<Self, WeightedError>
    where
        I: IntoIterator,
        I::Item: core::borrow::Borrow<f64>,
    {
        use core::borrow::Borrow as _;
        let mut cumulative = Vec::new();
        let mut total = 0.0f64;
        for w in weights {
            let w = *w.borrow();
            if w < 0.0 || !w.is_finite() {
                return Err(WeightedError);
            }
            total += w;
            cumulative.push(total);
        }
        if cumulative.is_empty() || total <= 0.0 {
            return Err(WeightedError);
        }
        Ok(WeightedIndex { cumulative })
    }
}

impl Distribution<usize> for WeightedIndex<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let u: f64 = unit::<f64, R>(rng) * total;
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite cumulative weights"))
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn weighted_index_respects_zero_weights() {
        let w = WeightedIndex::new([0.0, 1.0, 0.0, 3.0]).unwrap();
        let mut r = Lcg(3);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[w.sample(&mut r)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert_eq!(counts[2], 0);
        assert!(counts[3] > counts[1], "3:1 weights: {counts:?}");
    }

    #[test]
    fn weighted_index_rejects_bad_input() {
        assert!(WeightedIndex::new(Vec::<f64>::new()).is_err());
        assert!(WeightedIndex::new([0.0, 0.0]).is_err());
        assert!(WeightedIndex::new([-1.0, 2.0]).is_err());
    }
}
