//! The `rand::seq` subset: `SliceRandom::{shuffle, choose}`.

use crate::{RngCore, SampleRange};

/// rand 0.8's `seq::index::gen_index`: indices below `u32::MAX` are sampled
/// at `u32` width (one `next_u32`-based draw), matching the real crate's
/// stream consumption.
fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
    if ubound <= u32::MAX as usize {
        (0..ubound as u32).sample_single(rng) as usize
    } else {
        (0..ubound).sample_single(rng)
    }
}

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Uniform in-place permutation (Fisher–Yates).
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` if empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        // Fisher–Yates from the top, drawing each index through
        // `gen_index` as rand 0.8 does.
        for i in (1..self.len()).rev() {
            let j = gen_index(rng, i + 1);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[gen_index(rng, self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(99);
            self.0
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut v: Vec<u32> = (0..50).collect();
        let mut r = Lcg(11);
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_handles_empty_and_full() {
        let mut r = Lcg(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut r).is_none());
        let v = [7u8, 8, 9];
        assert!(v.contains(v.choose(&mut r).unwrap()));
    }
}
