//! Offline shim for the `serde` subset this workspace uses: a value-tree
//! [`Serialize`] trait (named-field structs via `#[derive(Serialize)]`,
//! primitives, tuples, `Vec`, `Option`, arrays, references) plus a marker
//! [`Deserialize`]. `serde_json` renders the [`Value`] tree.

// The derive macros share names with the traits below; macros and types
// live in different namespaces, mirroring real serde's `derive` feature.
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also produced by non-finite floats).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Finite float.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object as insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    /// Builds the value tree for `self`.
    fn to_value(&self) -> Value;
}

/// Marker for types whose `Deserialize` was derived; the shim never
/// deserializes (nothing in the workspace does).
pub trait Deserialize: Sized {}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as f64;
                if v.is_finite() { Value::Float(v) } else { Value::Null }
            }
        }
    )*};
}
ser_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

macro_rules! ser_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    };
}
ser_tuple!(A: 0);
ser_tuple!(A: 0, B: 1);
ser_tuple!(A: 0, B: 1, C: 2);
ser_tuple!(A: 0, B: 1, C: 2, D: 3);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_containers() {
        assert_eq!(3u32.to_value(), Value::UInt(3));
        assert_eq!((-4i64).to_value(), Value::Int(-4));
        assert_eq!(1.5f32.to_value(), Value::Float(1.5));
        assert_eq!(f32::NAN.to_value(), Value::Null);
        assert_eq!(vec![1u8, 2].to_value(), Value::Array(vec![Value::UInt(1), Value::UInt(2)]));
        assert_eq!(
            ("hi".to_string(), 2u8).to_value(),
            Value::Array(vec![Value::Str("hi".into()), Value::UInt(2)])
        );
        assert_eq!(Option::<u8>::None.to_value(), Value::Null);
    }
}
