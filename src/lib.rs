//! Workspace root crate: re-exports the sub-crates so examples and
//! integration tests can use a single import root.

pub use cl4srec;
pub use seqrec_data as data;
pub use seqrec_eval as eval;
pub use seqrec_models as models;
pub use seqrec_tensor as tensor;
